"""Tests for the simulated census extracts (Table 2 of the paper)."""

import numpy as np
import pytest

from repro.data.census import (
    BRAZIL_CENSUS_SCHEMA,
    US_CENSUS_SCHEMA,
    brazil_census,
    us_census,
)
from repro.stats.kendall import kendall_tau


class TestTable2Schemas:
    """The published schemas and domain sizes are reproduced exactly."""

    def test_us_domain_sizes(self):
        expected = {"age": 96, "income": 1020, "occupation": 511, "gender": 2}
        actual = {a.name: a.domain_size for a in US_CENSUS_SCHEMA}
        assert actual == expected

    def test_brazil_domain_sizes(self):
        expected = {
            "age": 95,
            "gender": 2,
            "disability": 2,
            "nativity": 2,
            "years_residing": 31,
            "education": 140,
            "working_hours": 95,
            "annual_income": 586,
        }
        actual = {a.name: a.domain_size for a in BRAZIL_CENSUS_SCHEMA}
        assert actual == expected

    def test_us_dimension_count(self):
        assert US_CENSUS_SCHEMA.dimensions == 4

    def test_brazil_dimension_count(self):
        assert BRAZIL_CENSUS_SCHEMA.dimensions == 8


class TestUSCensus:
    def test_default_cardinality_matches_paper(self):
        data = us_census(n_records=1000)
        assert data.n_records == 1000
        # The paper's full extract is 100,000 records — the default.
        assert us_census.__defaults__[0] == 100_000

    def test_deterministic_default_seed(self):
        a = us_census(n_records=500).values
        b = us_census(n_records=500).values
        assert (a == b).all()

    def test_income_is_skewed(self):
        data = us_census(n_records=20_000)
        income = data.column(data.schema.index_of("income"))
        assert np.median(income) < income.mean()

    def test_age_income_positively_dependent(self):
        data = us_census(n_records=5000)
        tau = kendall_tau(
            data.column(data.schema.index_of("age")),
            data.column(data.schema.index_of("income")),
        )
        assert tau > 0.1

    def test_gender_is_binary_and_balanced(self):
        data = us_census(n_records=20_000)
        gender = data.column(data.schema.index_of("gender"))
        assert set(np.unique(gender)) <= {0, 1}
        assert 0.4 < gender.mean() < 0.6


class TestBrazilCensus:
    def test_default_cardinality_matches_paper(self):
        assert brazil_census.__defaults__[0] == 188_846

    def test_small_sample_schema(self):
        data = brazil_census(n_records=300)
        assert data.schema == BRAZIL_CENSUS_SCHEMA
        assert data.n_records == 300

    def test_education_income_positively_dependent(self):
        data = brazil_census(n_records=5000)
        tau = kendall_tau(
            data.column(data.schema.index_of("education")),
            data.column(data.schema.index_of("annual_income")),
        )
        assert tau > 0.1

    def test_disability_is_rare(self):
        data = brazil_census(n_records=20_000)
        disability = data.column(data.schema.index_of("disability"))
        assert disability.mean() < 0.3

    def test_custom_correlation_accepted(self):
        data = brazil_census(n_records=200, correlation=np.eye(8))
        assert data.n_records == 200
