"""Tests for the raw-data encoders."""

import numpy as np
import pytest

from repro.data.discretize import (
    CategoricalEncoder,
    ContinuousBinner,
    TableEncoder,
)


class TestCategoricalEncoder:
    def test_total_order_is_deterministic(self):
        a = CategoricalEncoder(["b", "a", "c"])
        b = CategoricalEncoder(["c", "b", "a"])
        assert a.categories == b.categories == ["a", "b", "c"]

    def test_roundtrip(self):
        encoder = CategoricalEncoder(["x", "y", "z"])
        values = ["z", "x", "y", "x"]
        assert encoder.decode(encoder.encode(values)) == values

    def test_fit_deduplicates(self):
        encoder = CategoricalEncoder.fit(["a", "a", "b", "a"])
        assert encoder.domain_size == 2

    def test_unknown_value_raises(self):
        encoder = CategoricalEncoder(["a", "b"])
        with pytest.raises(ValueError):
            encoder.encode(["c"])

    def test_decode_out_of_domain_raises(self):
        encoder = CategoricalEncoder(["a", "b"])
        with pytest.raises(ValueError):
            encoder.decode(np.array([2]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CategoricalEncoder([])


class TestContinuousBinner:
    def test_explicit_edges(self):
        binner = ContinuousBinner([0.0, 1.0, 2.0, 3.0])
        assert binner.domain_size == 3
        assert (binner.encode([0.5, 1.5, 2.5]) == np.array([0, 1, 2])).all()

    def test_out_of_range_clamped(self):
        binner = ContinuousBinner([0.0, 1.0, 2.0])
        assert binner.encode([-5.0])[0] == 0
        assert binner.encode([99.0])[0] == 1

    def test_decode_to_midpoints(self):
        binner = ContinuousBinner([0.0, 2.0, 4.0])
        assert (binner.decode(np.array([0, 1])) == np.array([1.0, 3.0])).all()

    def test_quantile_fit_balances_mass(self):
        rng = np.random.default_rng(0)
        values = rng.exponential(10.0, size=10_000)
        binner = ContinuousBinner.fit(values, bins=10, strategy="quantile")
        codes = binner.encode(values)
        counts = np.bincount(codes, minlength=binner.domain_size)
        assert counts.max() / counts.min() < 1.5

    def test_uniform_fit_covers_range(self):
        values = [0.0, 10.0]
        binner = ContinuousBinner.fit(values, bins=5, strategy="uniform")
        assert binner.edges[0] == 0.0
        assert binner.edges[-1] == 10.0

    def test_constant_data_still_valid(self):
        binner = ContinuousBinner.fit([3.0, 3.0, 3.0], bins=4)
        assert binner.domain_size >= 1
        assert binner.encode([3.0])[0] == 0

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            ContinuousBinner([1.0])
        with pytest.raises(ValueError):
            ContinuousBinner([0.0, 0.0, 1.0])

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            ContinuousBinner.fit([1.0, 2.0], strategy="magic")


class TestTableEncoder:
    @pytest.fixture
    def encoder(self):
        return TableEncoder(
            names=["color", "height"],
            encoders=[
                CategoricalEncoder(["red", "green", "blue"]),
                ContinuousBinner([0.0, 1.0, 2.0, 3.0]),
            ],
        )

    def test_schema(self, encoder):
        assert encoder.schema.names == ["color", "height"]
        assert encoder.schema.domain_sizes == [3, 3]

    def test_encode_decode_roundtrip_categories(self, encoder):
        rows = [["red", 0.5], ["blue", 2.5], ["green", 1.5]]
        dataset = encoder.encode(rows)
        decoded = encoder.decode(dataset)
        assert [row[0] for row in decoded] == ["red", "blue", "green"]
        # Continuous values decode to bin midpoints.
        assert [row[1] for row in decoded] == [0.5, 2.5, 1.5]

    def test_end_to_end_with_dpcopula(self, encoder):
        """Raw rows -> encode -> DPCopula -> decode: the full user flow."""
        from repro.core.dpcopula import DPCopulaKendall

        rng = np.random.default_rng(1)
        colors = np.array(["red", "green", "blue"])[
            rng.integers(0, 3, size=300)
        ]
        heights = rng.uniform(0, 3, size=300)
        rows = [[c, h] for c, h in zip(colors, heights)]
        dataset = encoder.encode(rows)
        synthetic = DPCopulaKendall(epsilon=2.0, rng=2).fit_sample(dataset)
        decoded = encoder.decode(synthetic)
        assert len(decoded) == 300
        assert set(row[0] for row in decoded) <= {"red", "green", "blue"}

    def test_rejects_width_mismatch(self, encoder):
        with pytest.raises(ValueError):
            encoder.encode([["red", 1.0, "extra"]])

    def test_rejects_name_encoder_mismatch(self):
        with pytest.raises(ValueError):
            TableEncoder(names=["a"], encoders=[])

    def test_decode_rejects_foreign_schema(self, encoder, small_dataset):
        with pytest.raises(ValueError):
            encoder.decode(small_dataset)
