"""Tests for the schema/dataset model."""

import numpy as np
import pytest

from repro.data.dataset import (
    SMALL_DOMAIN_THRESHOLD,
    Attribute,
    Dataset,
    Schema,
    coarsen_dataset,
    concatenate,
)


class TestAttribute:
    def test_small_domain_flag(self):
        assert Attribute("gender", 2).is_small_domain
        assert not Attribute("age", SMALL_DOMAIN_THRESHOLD).is_small_domain

    def test_contains(self):
        attribute = Attribute("x", 5)
        assert attribute.contains(np.array([0, 4]))
        assert not attribute.contains(np.array([5]))
        assert not attribute.contains(np.array([-1]))

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            Attribute("x", 0)


class TestSchema:
    def test_from_domain_sizes(self):
        schema = Schema.from_domain_sizes([10, 20, 30])
        assert schema.names == ["A0", "A1", "A2"]
        assert schema.domain_sizes == [10, 20, 30]

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            Schema([Attribute("x", 2), Attribute("x", 3)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Schema([])

    def test_domain_space_handles_huge_products(self):
        schema = Schema.from_domain_sizes([1000] * 8)
        assert schema.domain_space() == pytest.approx(1e24)

    def test_index_of(self):
        schema = Schema([Attribute("a", 2), Attribute("b", 3)])
        assert schema.index_of("b") == 1
        with pytest.raises(KeyError):
            schema.index_of("c")

    def test_small_and_large_domain_indices(self):
        schema = Schema(
            [Attribute("g", 2), Attribute("age", 90), Attribute("f", 3)]
        )
        assert schema.small_domain_indices() == [0, 2]
        assert schema.large_domain_indices() == [1]

    def test_subset_preserves_order(self):
        schema = Schema.from_domain_sizes([5, 10, 15])
        sub = schema.subset([2, 0])
        assert sub.domain_sizes == [15, 5]

    def test_equality(self):
        assert Schema.from_domain_sizes([2, 3]) == Schema.from_domain_sizes([2, 3])
        assert Schema.from_domain_sizes([2, 3]) != Schema.from_domain_sizes([3, 2])


class TestDataset:
    def test_basic_properties(self, small_dataset):
        assert small_dataset.n_records == 200
        assert small_dataset.dimensions == 2
        assert len(small_dataset) == 200

    def test_values_read_only(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.values[0, 0] = 1

    def test_rejects_out_of_domain(self, schema_2d):
        with pytest.raises(ValueError):
            Dataset(np.array([[50, 0]]), schema_2d)

    def test_rejects_wrong_width(self, schema_2d):
        with pytest.raises(ValueError):
            Dataset(np.zeros((5, 3), dtype=int), schema_2d)

    def test_rejects_non_integer_values(self, schema_2d):
        with pytest.raises(ValueError):
            Dataset(np.array([[0.5, 1.0]]), schema_2d)

    def test_accepts_float_integers(self, schema_2d):
        ds = Dataset(np.array([[1.0, 2.0]]), schema_2d)
        assert ds.values.dtype == np.int64

    def test_marginal_counts_sum_to_n(self, small_dataset):
        counts = small_dataset.marginal_counts(0)
        assert counts.sum() == small_dataset.n_records
        assert counts.size == 50

    def test_project(self, small_dataset):
        projected = small_dataset.project([1])
        assert projected.dimensions == 1
        assert (projected.column(0) == small_dataset.column(1)).all()

    def test_select(self, small_dataset):
        mask = small_dataset.column(0) < 25
        subset = small_dataset.select(mask)
        assert subset.n_records == int(mask.sum())

    def test_sample_caps_at_n(self, small_dataset, rng):
        sample = small_dataset.sample(10_000, rng)
        assert sample.n_records == small_dataset.n_records

    def test_sample_without_replacement(self, small_dataset, rng):
        sample = small_dataset.sample(50, rng)
        assert sample.n_records == 50


class TestCoarsenDataset:
    def test_leaves_small_domains_alone(self, mixed_schema_dataset):
        out = coarsen_dataset(mixed_schema_dataset, 256)
        assert out.schema.domain_sizes == mixed_schema_dataset.schema.domain_sizes

    def test_buckets_large_domains(self, mixed_schema_dataset):
        out = coarsen_dataset(mixed_schema_dataset, 50)
        assert all(size <= 50 for size in out.schema.domain_sizes)
        assert out.n_records == mixed_schema_dataset.n_records

    def test_bucketing_is_integer_division(self, schema_2d, rng):
        values = np.column_stack([np.arange(50), np.zeros(50, dtype=int)])
        ds = Dataset(values, schema_2d)
        out = coarsen_dataset(ds, 25)
        assert (out.column(0) == np.arange(50) // 2).all()

    def test_renames_coarsened_attributes(self, mixed_schema_dataset):
        out = coarsen_dataset(mixed_schema_dataset, 50)
        assert "income/4" in out.schema.names


class TestConcatenate:
    def test_stacks(self, small_dataset):
        combined = concatenate([small_dataset, small_dataset])
        assert combined.n_records == 400

    def test_rejects_schema_mismatch(self, small_dataset, synthetic_4d):
        with pytest.raises(ValueError):
            concatenate([small_dataset, synthetic_4d])

    def test_rejects_empty_list(self):
        with pytest.raises(ValueError):
            concatenate([])
