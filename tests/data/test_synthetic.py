"""Tests for the Gaussian-dependence synthetic generator."""

import numpy as np
import pytest

from repro.data.synthetic import (
    SyntheticSpec,
    gaussian_dependence_data,
    random_correlation_matrix,
)
from repro.stats.kendall import kendall_tau
from repro.stats.correlation import correlation_from_tau
from repro.stats.psd_repair import is_positive_definite


class TestRandomCorrelationMatrix:
    @pytest.mark.parametrize("m", [2, 4, 8])
    def test_is_valid_correlation(self, m):
        matrix = random_correlation_matrix(m, rng=0)
        assert matrix.shape == (m, m)
        assert np.allclose(np.diag(matrix), 1.0)
        assert np.allclose(matrix, matrix.T)
        assert is_positive_definite(matrix)

    def test_zero_strength_is_identity(self):
        matrix = random_correlation_matrix(4, rng=0, strength=0.0)
        assert np.allclose(matrix, np.eye(4))

    def test_strength_scales_coupling(self):
        weak = random_correlation_matrix(4, rng=0, strength=0.2)
        strong = random_correlation_matrix(4, rng=0, strength=0.8)
        off = np.triu_indices(4, 1)
        assert np.abs(strong[off]).mean() > np.abs(weak[off]).mean()

    def test_rejects_bad_strength(self):
        with pytest.raises(ValueError):
            random_correlation_matrix(3, strength=1.0)


class TestGaussianDependenceData:
    def test_shape_and_domains(self):
        spec = SyntheticSpec(n_records=500, domain_sizes=(20, 30, 40))
        data = gaussian_dependence_data(spec, rng=0)
        assert data.n_records == 500
        assert data.schema.domain_sizes == [20, 30, 40]
        for j, size in enumerate([20, 30, 40]):
            assert data.column(j).min() >= 0
            assert data.column(j).max() < size

    def test_deterministic_with_seed(self):
        spec = SyntheticSpec(n_records=100, domain_sizes=(10, 10))
        a = gaussian_dependence_data(spec, rng=5).values
        b = gaussian_dependence_data(spec, rng=5).values
        assert (a == b).all()

    def test_dependence_matches_requested_correlation(self):
        correlation = np.array([[1.0, 0.8], [0.8, 1.0]])
        spec = SyntheticSpec(
            n_records=8000, domain_sizes=(500, 500), correlation=correlation
        )
        data = gaussian_dependence_data(spec, rng=1)
        tau = kendall_tau(data.column(0), data.column(1))
        recovered = correlation_from_tau(tau)
        assert recovered == pytest.approx(0.8, abs=0.05)

    def test_independent_when_identity(self):
        spec = SyntheticSpec(
            n_records=8000, domain_sizes=(500, 500), correlation=np.eye(2)
        )
        data = gaussian_dependence_data(spec, rng=1)
        tau = kendall_tau(data.column(0), data.column(1))
        assert abs(tau) < 0.05

    def test_zipf_margin_is_skewed(self):
        spec = SyntheticSpec(
            n_records=5000, domain_sizes=(100, 100), margins="zipf"
        )
        data = gaussian_dependence_data(spec, rng=2)
        counts = data.marginal_counts(0)
        assert counts[0] > counts[50] * 5

    def test_uniform_margin_is_flat(self):
        spec = SyntheticSpec(
            n_records=50_000, domain_sizes=(10, 10), margins="uniform"
        )
        data = gaussian_dependence_data(spec, rng=3)
        counts = data.marginal_counts(0)
        assert counts.max() / counts.min() < 1.3

    def test_per_attribute_margins(self):
        spec = SyntheticSpec(
            n_records=3000,
            domain_sizes=(50, 50),
            margins=("zipf", "uniform"),
        )
        data = gaussian_dependence_data(spec, rng=4)
        zipf_counts = data.marginal_counts(0)
        assert zipf_counts.argmax() == 0

    def test_rejects_margin_count_mismatch(self):
        spec = SyntheticSpec(
            n_records=10, domain_sizes=(5, 5, 5), margins=("zipf", "uniform")
        )
        with pytest.raises(ValueError):
            gaussian_dependence_data(spec, rng=0)

    def test_rejects_correlation_shape_mismatch(self):
        spec = SyntheticSpec(
            n_records=10, domain_sizes=(5, 5, 5), correlation=np.eye(2)
        )
        with pytest.raises(ValueError):
            gaussian_dependence_data(spec, rng=0)
