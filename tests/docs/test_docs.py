"""The documentation must stay navigable, runnable and CLI-accurate.

Runs the ``tools/check_docs.py`` checks over the real docs (they must
be clean) and over deliberately broken fixtures (each check must catch
its failure mode).
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


class TestRepositoryDocs:
    def test_docs_are_clean(self):
        assert check_docs.run_all() == []

    def test_every_doc_page_is_indexed(self):
        # The reachability check is not vacuous: the index exists and
        # links every page directly.
        index = (REPO_ROOT / "docs" / "README.md").read_text()
        for page in sorted((REPO_ROOT / "docs").glob("*.md")):
            if page.name != "README.md":
                assert f"({page.name})" in index, page.name

    def test_docs_contain_runnable_examples(self):
        # The doctest check must have something to chew on.
        blocks = [
            block
            for path in check_docs.doc_files()
            for block in check_docs.extract_code_blocks(path, "pycon")
        ]
        assert len(blocks) >= 3

    def test_docs_mention_every_resilience_metric(self):
        observability = (REPO_ROOT / "docs" / "OBSERVABILITY.md").read_text()
        for metric in [
            "dpcopula_jobs_state",
            "dpcopula_jobs_recovered_total",
            "dpcopula_fit_queue_refusals_total",
            "dpcopula_http_throttled_total",
            "dpcopula_epsilon_refunded_total",
            "dpcopula_retries_total",
            "dpcopula_deadline_exceeded_total",
            "dpcopula_faults_injected_total",
        ]:
            assert metric in observability, metric


@pytest.fixture
def doc_tree(tmp_path, monkeypatch):
    """A miniature repo-with-docs the checks are repointed at."""
    docs = tmp_path / "docs"
    docs.mkdir()
    monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
    monkeypatch.setattr(check_docs, "DOCS_DIR", docs)
    (tmp_path / "README.md").write_text("# Root\n\n[docs](docs/README.md)\n")
    (docs / "README.md").write_text("# Index\n\n[Guide](GUIDE.md)\n")
    (docs / "GUIDE.md").write_text("# Guide\n\nAll good.\n")
    return tmp_path


class TestBrokenDocsAreCaught:
    def test_broken_relative_link(self, doc_tree):
        (doc_tree / "docs" / "GUIDE.md").write_text("[gone](MISSING.md)\n")
        errors = check_docs.run_all()
        assert any("broken link -> MISSING.md" in e for e in errors)

    def test_links_inside_code_blocks_are_ignored(self, doc_tree):
        (doc_tree / "docs" / "GUIDE.md").write_text(
            "```\n[not a link](MISSING.md)\n```\n"
        )
        assert check_docs.run_all() == []

    def test_orphan_page(self, doc_tree):
        (doc_tree / "docs" / "ORPHAN.md").write_text("# Nobody links here\n")
        errors = check_docs.run_all()
        assert any("ORPHAN.md: not reachable" in e for e in errors)

    def test_failing_doctest(self, doc_tree):
        (doc_tree / "docs" / "GUIDE.md").write_text(
            "```pycon\n>>> 1 + 1\n3\n```\n"
        )
        errors = check_docs.run_all()
        assert any("doctest failure" in e for e in errors)

    def test_unknown_cli_flag(self, doc_tree):
        (doc_tree / "docs" / "GUIDE.md").write_text(
            "```bash\ndpcopula serve --no-such-flag\n```\n"
        )
        errors = check_docs.run_all()
        assert any("no flag --no-such-flag" in e for e in errors)

    def test_unknown_cli_command(self, doc_tree):
        (doc_tree / "docs" / "GUIDE.md").write_text(
            "```bash\ndpcopula frobnicate data.csv\n```\n"
        )
        errors = check_docs.run_all()
        assert any("unknown dpcopula command 'frobnicate'" in e for e in errors)

    def test_known_flags_pass(self, doc_tree):
        (doc_tree / "docs" / "GUIDE.md").write_text(
            "```bash\n"
            "dpcopula jobs --data-dir ./svc --json\n"
            "python -m repro serve --data-dir ./svc --max-queued-fits 8\n"
            "```\n"
        )
        assert check_docs.run_all() == []
