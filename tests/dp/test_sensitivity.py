"""Tests for sensitivity constants, including an empirical check of
Lemma 4.1 (the Kendall's-tau sensitivity bound)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.sensitivity import (
    bounded_mean_sensitivity,
    count_sensitivity,
    histogram_sensitivity,
    kendall_tau_sensitivity,
)
from repro.stats.kendall import kendall_tau_naive


def test_count_sensitivity_is_one():
    assert count_sensitivity() == 1.0


def test_histogram_sensitivity_is_one():
    assert histogram_sensitivity() == 1.0


class TestKendallTauSensitivity:
    def test_formula(self):
        assert kendall_tau_sensitivity(999) == pytest.approx(4.0 / 1000.0)

    def test_decreases_with_n(self):
        values = [kendall_tau_sensitivity(n) for n in (10, 100, 1000)]
        assert values == sorted(values, reverse=True)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            kendall_tau_sensitivity(0)

    @given(
        st.integers(min_value=5, max_value=30),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_lemma_41_empirically(self, n, seed):
        """Adding one tuple to n records moves tau-a by <= 4/(n+1).

        This is the exact neighbourhood of Lemma 4.1: D has n records,
        D' has n+1 (one tuple added), and the sensitivity bound is
        stated in terms of the larger dataset's 4/(n+1).
        """
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        tau_before = kendall_tau_naive(x, y)
        # Adversarial-ish new tuple: extremes stress the bound hardest.
        for new_x, new_y in [(1e9, -1e9), (-1e9, 1e9), (0.0, 0.0), (1e9, 1e9)]:
            tau_after = kendall_tau_naive(
                np.append(x, new_x), np.append(y, new_y)
            )
            assert abs(tau_after - tau_before) <= 4.0 / (n + 1) + 1e-12


class TestBoundedMeanSensitivity:
    def test_formula(self):
        assert bounded_mean_sensitivity(2.0, 100) == pytest.approx(0.02)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            bounded_mean_sensitivity(0.0, 10)
        with pytest.raises(ValueError):
            bounded_mean_sensitivity(2.0, 0)
