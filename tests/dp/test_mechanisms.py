"""Tests for the Laplace, geometric and exponential mechanisms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.mechanisms import (
    clamp,
    exponential_mechanism,
    geometric_mechanism,
    laplace_mechanism,
    laplace_noise,
)


class TestLaplaceNoise:
    def test_scalar_when_size_none(self):
        assert isinstance(laplace_noise(1.0, rng=0), float)

    def test_shape(self):
        out = laplace_noise(1.0, size=(3, 4), rng=0)
        assert out.shape == (3, 4)

    def test_empirical_scale(self):
        draws = laplace_noise(2.0, size=200_000, rng=0)
        # Laplace(b) has variance 2 b^2 = 8.
        assert np.var(draws) == pytest.approx(8.0, rel=0.05)
        assert np.mean(draws) == pytest.approx(0.0, abs=0.05)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            laplace_noise(0.0)


class TestLaplaceMechanism:
    def test_scalar_output(self):
        out = laplace_mechanism(5.0, sensitivity=1.0, epsilon=1.0, rng=0)
        assert isinstance(out, float)

    def test_array_output_shape(self):
        out = laplace_mechanism(np.zeros(7), sensitivity=1.0, epsilon=1.0, rng=0)
        assert out.shape == (7,)

    def test_huge_epsilon_is_nearly_exact(self):
        out = laplace_mechanism(10.0, sensitivity=1.0, epsilon=1e9, rng=0)
        assert out == pytest.approx(10.0, abs=1e-6)

    def test_noise_scale_matches_sensitivity_over_epsilon(self):
        out = laplace_mechanism(
            np.zeros(200_000), sensitivity=4.0, epsilon=2.0, rng=0
        )
        # scale b = 4/2 = 2, variance 2 b^2 = 8.
        assert np.var(out) == pytest.approx(8.0, rel=0.05)

    @pytest.mark.parametrize("sensitivity,epsilon", [(0, 1), (1, 0), (-1, 1)])
    def test_rejects_invalid_parameters(self, sensitivity, epsilon):
        with pytest.raises(ValueError):
            laplace_mechanism(0.0, sensitivity=sensitivity, epsilon=epsilon)


class TestGeometricMechanism:
    def test_integer_output(self):
        out = geometric_mechanism(10, sensitivity=1.0, epsilon=1.0, rng=0)
        assert isinstance(out, int)

    def test_array_dtype(self):
        out = geometric_mechanism(np.arange(5), sensitivity=1.0, epsilon=1.0, rng=0)
        assert out.dtype == np.int64

    def test_zero_mean(self):
        out = geometric_mechanism(
            np.zeros(100_000, dtype=int), sensitivity=1.0, epsilon=1.0, rng=0
        )
        assert abs(out.mean()) < 0.05

    def test_high_epsilon_changes_little(self):
        out = geometric_mechanism(
            np.full(1000, 7), sensitivity=1.0, epsilon=50.0, rng=0
        )
        assert np.abs(out - 7).max() <= 1


class TestExponentialMechanism:
    def test_selects_from_candidates(self):
        candidates = ["a", "b", "c"]
        out = exponential_mechanism(
            candidates, utility=lambda c: 0.0, sensitivity=1.0, epsilon=1.0, rng=0
        )
        assert out in candidates

    def test_prefers_high_utility(self):
        candidates = list(range(10))
        gen = np.random.default_rng(0)
        picks = [
            exponential_mechanism(
                candidates,
                utility=lambda c: 100.0 if c == 3 else 0.0,
                sensitivity=1.0,
                epsilon=1.0,
                rng=gen,
            )
            for _ in range(200)
        ]
        assert np.mean([p == 3 for p in picks]) > 0.95

    def test_uniform_at_tiny_epsilon(self):
        candidates = [0, 1]
        gen = np.random.default_rng(0)
        picks = [
            exponential_mechanism(
                candidates,
                utility=lambda c: float(c),
                sensitivity=1.0,
                epsilon=1e-9,
                rng=gen,
            )
            for _ in range(2000)
        ]
        assert 0.45 < np.mean(picks) < 0.55

    def test_rejects_empty_candidates(self):
        with pytest.raises(ValueError):
            exponential_mechanism([], utility=lambda c: 0.0, sensitivity=1, epsilon=1)

    def test_rejects_nonfinite_utility(self):
        with pytest.raises(ValueError):
            exponential_mechanism(
                [1], utility=lambda c: float("nan"), sensitivity=1, epsilon=1
            )

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_always_returns_a_candidate(self, n_candidates, seed):
        candidates = list(range(n_candidates))
        out = exponential_mechanism(
            candidates,
            utility=lambda c: -float(c),
            sensitivity=1.0,
            epsilon=0.5,
            rng=seed,
        )
        assert out in candidates


class TestClamp:
    def test_scalar(self):
        assert clamp(5.0, 0.0, 1.0) == 1.0

    def test_array(self):
        out = clamp(np.array([-2.0, 0.5, 2.0]), -1.0, 1.0)
        assert (out == np.array([-1.0, 0.5, 1.0])).all()

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            clamp(0.0, 1.0, -1.0)
