"""Tests for the empirical DP validator (and with it, our calibrations)."""

import numpy as np
import pytest

from repro.dp.validation import estimate_privacy_loss, laplace_release


def _count_mechanism(scale):
    return laplace_release(lambda dataset: float(len(dataset)), scale)


class TestEstimatePrivacyLoss:
    def test_correct_laplace_calibration_passes(self):
        """COUNT with Lap(1/ε) at ε = 1 must look ε-DP empirically."""
        epsilon = 1.0
        mechanism = _count_mechanism(scale=1.0 / epsilon)
        estimate = estimate_privacy_loss(
            mechanism,
            dataset_a=list(range(100)),
            dataset_b=list(range(101)),
            epsilon_claimed=epsilon,
            n_trials=20_000,
            rng=0,
        )
        assert estimate.consistent()
        assert estimate.max_observed_loss <= epsilon + 0.35

    def test_undernoised_mechanism_detected(self):
        """Half the required noise => empirical loss ~2ε, flagged."""
        epsilon = 1.0
        broken = _count_mechanism(scale=0.5 / epsilon)  # 2x too little noise
        estimate = estimate_privacy_loss(
            broken,
            dataset_a=list(range(100)),
            dataset_b=list(range(101)),
            epsilon_claimed=epsilon,
            n_trials=20_000,
            rng=1,
        )
        assert not estimate.consistent()

    def test_constant_mechanism_rejected_by_binning(self):
        def constant(dataset, gen):
            return 42.0

        with pytest.raises(ValueError):
            # Outputs are constant; the quantile binning degenerates and
            # the estimator refuses to conclude anything.
            estimate_privacy_loss(
                constant,
                dataset_a=[1] * 10,
                dataset_b=[1] * 11,
                epsilon_claimed=1.0,
                n_trials=1000,
                rng=2,
            )

    def test_kendall_release_calibration(self):
        """End-to-end: the Lemma-4.1 Kendall release at ε₂ = 0.5 must be
        empirically consistent with ε = 0.5 on neighbouring datasets."""
        from repro.stats.kendall import kendall_tau_merge

        rng = np.random.default_rng(3)
        base = rng.standard_normal((200, 2))
        neighbour = np.vstack([base, [[10.0, -10.0]]])
        epsilon = 0.5
        sensitivity = 4.0 / (201 + 1)  # larger dataset's n + 1

        def mechanism(data, gen):
            tau = kendall_tau_merge(data[:, 0], data[:, 1])
            return tau + gen.laplace(0.0, sensitivity / epsilon)

        estimate = estimate_privacy_loss(
            mechanism,
            dataset_a=base,
            dataset_b=neighbour,
            epsilon_claimed=epsilon,
            n_trials=15_000,
            rng=4,
        )
        assert estimate.consistent()

    def test_parameter_validation(self):
        mechanism = _count_mechanism(1.0)
        with pytest.raises(ValueError):
            estimate_privacy_loss(mechanism, [1], [1, 2], 0.0, rng=5)
        with pytest.raises(ValueError):
            estimate_privacy_loss(
                mechanism, [1], [1, 2], 1.0, n_trials=10, rng=6
            )

    def test_laplace_release_validates_scale(self):
        with pytest.raises(ValueError):
            laplace_release(lambda d: 0.0, scale=0.0)
