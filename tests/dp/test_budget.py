"""Tests for the privacy-budget ledger and the k-ratio split."""

import pytest

from repro.dp.budget import (
    BudgetExhaustedError,
    PrivacyBudget,
    split_budget_by_ratio,
)


class TestPrivacyBudget:
    def test_initial_state(self):
        budget = PrivacyBudget(1.0)
        assert budget.remaining == 1.0
        assert budget.spent == 0.0

    def test_spend_reduces_remaining(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.3, "step")
        assert budget.remaining == pytest.approx(0.7)

    def test_spend_returns_amount(self):
        assert PrivacyBudget(1.0).spend(0.25) == 0.25

    def test_overdraw_raises(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.9)
        with pytest.raises(BudgetExhaustedError):
            budget.spend(0.2)

    def test_exact_exhaustion_allowed(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.5)
        budget.spend(0.5)
        assert budget.remaining == 0.0

    def test_many_small_slices_tolerate_float_rounding(self):
        budget = PrivacyBudget(1.0)
        for _ in range(7):
            budget.spend(1.0 / 7.0)
        assert budget.remaining == pytest.approx(0.0, abs=1e-9)

    def test_log_records_labels(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.5, "margins")
        budget.spend(0.5, "correlations")
        assert [label for label, _ in budget.log] == ["margins", "correlations"]

    def test_split_divides_remaining(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.4)
        parts = budget.split(3)
        assert len(parts) == 3
        assert sum(parts) == pytest.approx(0.6)

    def test_split_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            PrivacyBudget(1.0).split(0)

    def test_subbudget_spends_parent(self):
        parent = PrivacyBudget(1.0)
        child = parent.subbudget(0.4, "partition")
        assert parent.remaining == pytest.approx(0.6)
        assert child.epsilon == pytest.approx(0.4)

    def test_parallel_spend_charges_once(self):
        budget = PrivacyBudget(1.0)
        budget.spend_parallel(0.5, "disjoint round")
        assert budget.remaining == pytest.approx(0.5)

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ValueError):
            PrivacyBudget(0.0)

    def test_rejects_nonpositive_spend(self):
        with pytest.raises(ValueError):
            PrivacyBudget(1.0).spend(0.0)

    def test_summary_mentions_labels(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.5, "margins")
        assert "margins" in budget.summary()


class TestSplitBudgetByRatio:
    def test_equal_split_at_k_one(self):
        e1, e2 = split_budget_by_ratio(1.0, 1.0)
        assert e1 == pytest.approx(0.5)
        assert e2 == pytest.approx(0.5)

    def test_paper_default_k_eight(self):
        e1, e2 = split_budget_by_ratio(0.9, 8.0)
        assert e1 == pytest.approx(0.8)
        assert e2 == pytest.approx(0.1)
        assert e1 / e2 == pytest.approx(8.0)

    def test_parts_sum_to_epsilon(self):
        for k in (0.1, 1.0, 3.7, 100.0):
            e1, e2 = split_budget_by_ratio(2.5, k)
            assert e1 + e2 == pytest.approx(2.5)
            assert e1 > 0 and e2 > 0

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            split_budget_by_ratio(0.0, 1.0)
        with pytest.raises(ValueError):
            split_budget_by_ratio(1.0, 0.0)
