"""Tests for the user-facing ``dpcopula`` command."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.dataset import Attribute, Dataset, Schema
from repro.io import load_dataset_csv, save_dataset_csv


@pytest.fixture
def csv_dataset(tmp_path, rng):
    schema = Schema([Attribute("a", 60), Attribute("b", 80)])
    latent = rng.multivariate_normal([0, 0], [[1, 0.6], [0.6, 1]], size=600)
    a = np.clip(((latent[:, 0] + 3) / 6 * 60).astype(int), 0, 59)
    b = np.clip(((latent[:, 1] + 3) / 6 * 80).astype(int), 0, 79)
    dataset = Dataset(np.column_stack([a, b]), schema)
    path = tmp_path / "data.csv"
    save_dataset_csv(dataset, path)
    return path, dataset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synthesize_defaults(self):
        args = build_parser().parse_args(["synthesize", "in.csv", "out.csv"])
        assert args.epsilon == 1.0
        assert args.method == "kendall"
        assert args.k == 8.0

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["synthesize", "in.csv", "out.csv", "--method", "bayes"]
            )

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--data-dir", "svc"])
        assert args.host == "127.0.0.1"
        assert args.port == 8639
        assert args.epsilon_cap == 10.0

    def test_serve_requires_data_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_fit_is_an_alias_of_synthesize(self):
        args = build_parser().parse_args(["fit", "in.csv", "out.csv"])
        assert args.command == "fit"
        assert args.epsilon == 1.0
        assert args.profile is False

    def test_serve_log_level(self):
        args = build_parser().parse_args(
            ["serve", "--data-dir", "svc", "--log-level", "debug"]
        )
        assert args.log_level == "debug"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--data-dir", "svc", "--log-level", "loud"]
            )


class TestSynthesize:
    def test_end_to_end(self, csv_dataset, tmp_path, capsys):
        input_path, original = csv_dataset
        output_path = tmp_path / "synthetic.csv"
        code = main(
            [
                "synthesize",
                str(input_path),
                str(output_path),
                "--epsilon",
                "1.0",
                "--seed",
                "0",
            ]
        )
        assert code == 0
        synthetic = load_dataset_csv(output_path)
        assert synthetic.schema == original.schema
        assert synthetic.n_records == original.n_records
        out = capsys.readouterr().out
        assert "PrivacyBudget" in out

    def test_profile_prints_a_stage_tree(self, csv_dataset, tmp_path, capsys):
        input_path, original = csv_dataset
        output_path = tmp_path / "synthetic.csv"
        code = main(
            [
                "fit",
                str(input_path),
                str(output_path),
                "--seed",
                "0",
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stage timings (seconds):" in out
        for stage in ("synthesize", "fit", "margins", "correlation", "sampling"):
            assert stage in out, f"missing stage {stage!r} in profile tree"
        # The profiled run is bitwise identical to an unprofiled one.
        profiled = load_dataset_csv(output_path)
        plain_path = tmp_path / "plain.csv"
        assert main(["synthesize", str(input_path), str(plain_path), "--seed", "0"]) == 0
        np.testing.assert_array_equal(
            profiled.values, load_dataset_csv(plain_path).values
        )

    def test_profile_survives_the_process_backend(
        self, csv_dataset, tmp_path, capsys
    ):
        input_path, _ = csv_dataset
        output_path = tmp_path / "synthetic.csv"
        code = main(
            [
                "fit",
                str(input_path),
                str(output_path),
                "--seed",
                "0",
                "--profile",
                "--parallel-backend",
                "process",
                "--parallel-workers",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "parallel.map_tasks" in out
        assert "parallel.chunk" in out

    def test_resample_profile(self, csv_dataset, tmp_path, capsys):
        input_path, _ = csv_dataset
        model_path = tmp_path / "model.npz"
        assert (
            main(
                [
                    "synthesize",
                    str(input_path),
                    str(tmp_path / "s.csv"),
                    "--seed",
                    "0",
                    "--save-model",
                    str(model_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "resample",
                str(model_path),
                str(tmp_path / "r.csv"),
                "--n",
                "50",
                "--seed",
                "1",
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stage timings (seconds):" in out
        assert "resample" in out
        assert "sampling" in out

    def test_n_override(self, csv_dataset, tmp_path):
        input_path, _ = csv_dataset
        output_path = tmp_path / "synthetic.csv"
        main(
            [
                "synthesize",
                str(input_path),
                str(output_path),
                "--n",
                "123",
                "--seed",
                "0",
            ]
        )
        assert load_dataset_csv(output_path).n_records == 123

    def test_save_model_and_resample(self, csv_dataset, tmp_path):
        input_path, _ = csv_dataset
        output_path = tmp_path / "synthetic.csv"
        model_path = tmp_path / "model.npz"
        main(
            [
                "synthesize",
                str(input_path),
                str(output_path),
                "--seed",
                "0",
                "--save-model",
                str(model_path),
            ]
        )
        assert model_path.exists()
        more_path = tmp_path / "more.csv"
        code = main(
            ["resample", str(model_path), str(more_path), "--n", "50", "--seed", "1"]
        )
        assert code == 0
        assert load_dataset_csv(more_path).n_records == 50

    def test_report_flag(self, csv_dataset, tmp_path, capsys):
        input_path, _ = csv_dataset
        output_path = tmp_path / "synthetic.csv"
        main(
            [
                "synthesize",
                str(input_path),
                str(output_path),
                "--seed",
                "0",
                "--report",
            ]
        )
        out = capsys.readouterr().out
        assert "UtilityReport" in out
        assert "TVD" in out

    def test_mle_method(self, csv_dataset, tmp_path):
        input_path, original = csv_dataset
        output_path = tmp_path / "synthetic.csv"
        code = main(
            [
                "synthesize",
                str(input_path),
                str(output_path),
                "--method",
                "mle",
                "--seed",
                "0",
            ]
        )
        assert code == 0
        assert load_dataset_csv(output_path).schema == original.schema


class TestHybridViaCLI:
    def test_hybrid_save_model_is_an_error(
        self, tmp_path, mixed_schema_dataset, capsys
    ):
        """--save-model with --method hybrid must fail fast, not warn."""
        input_path = tmp_path / "mixed.csv"
        save_dataset_csv(mixed_schema_dataset, input_path)
        output_path = tmp_path / "synthetic.csv"
        model_path = tmp_path / "model.npz"
        code = main(
            [
                "synthesize",
                str(input_path),
                str(output_path),
                "--method",
                "hybrid",
                "--save-model",
                str(model_path),
            ]
        )
        assert code != 0
        assert "unsupported for the hybrid method" in capsys.readouterr().err
        # Failing fast: no synthetic output, no model file.
        assert not model_path.exists()
        assert not output_path.exists()

    def test_hybrid_on_mixed_schema(self, tmp_path, mixed_schema_dataset):
        input_path = tmp_path / "mixed.csv"
        save_dataset_csv(mixed_schema_dataset, input_path)
        output_path = tmp_path / "synthetic.csv"
        code = main(
            [
                "synthesize",
                str(input_path),
                str(output_path),
                "--method",
                "hybrid",
                "--epsilon",
                "2.0",
                "--seed",
                "0",
            ]
        )
        assert code == 0
        synthetic = load_dataset_csv(output_path)
        assert synthetic.schema == mixed_schema_dataset.schema


class TestInspect:
    def test_prints_schema(self, csv_dataset, capsys):
        input_path, _ = csv_dataset
        assert main(["inspect", str(input_path)]) == 0
        out = capsys.readouterr().out
        assert "a: |A| = 60" in out
        assert "large-domain" in out

    def test_flags_small_domains(self, tmp_path, mixed_schema_dataset, capsys):
        input_path = tmp_path / "mixed.csv"
        save_dataset_csv(mixed_schema_dataset, input_path)
        main(["inspect", str(input_path)])
        out = capsys.readouterr().out
        assert "small-domain attributes present" in out

    def test_json_output(self, csv_dataset, capsys):
        import json

        input_path, original = csv_dataset
        assert main(["inspect", str(input_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_records"] == original.n_records
        assert summary["attributes"] == [
            {"name": "a", "domain_size": 60, "kind": "large-domain"},
            {"name": "b", "domain_size": 80, "kind": "large-domain"},
        ]
        assert summary["hybrid_recommended"] is False

    def test_json_matches_service_serializer(self, csv_dataset, capsys):
        """The CLI and the service share one inspect document."""
        import json

        from repro.service.serializers import dataset_summary

        input_path, original = csv_dataset
        main(["inspect", str(input_path), "--json"])
        printed = json.loads(capsys.readouterr().out)
        assert printed == dataset_summary(original)


class TestEvaluate:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["evaluate", "--scenario", "smoke-mixed"])
        assert args.epsilon == 1.0
        assert args.marginal_k == 3
        assert args.queries == 60
        assert args.list is False

    def test_list_prints_catalog(self, capsys):
        assert main(["evaluate", "--list"]) == 0
        out = capsys.readouterr().out
        assert "smoke-mixed" in out
        assert "acs-income" in out
        assert "target=" in out

    def test_scenario_required_without_list(self, capsys):
        assert main(["evaluate"]) == 2
        assert "--scenario is required" in capsys.readouterr().err

    def test_unknown_scenario_is_a_clean_error(self, capsys):
        assert main(["evaluate", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_smoke_run_writes_report(self, tmp_path, capsys):
        import json as json_module

        output = tmp_path / "report.json"
        code = main(
            [
                "evaluate",
                "--scenario",
                "smoke-mixed",
                "--methods",
                "dpcopula-kendall,identity",
                "--queries",
                "10",
                "--marginal-k",
                "2",
                "--max-marginals",
                "4",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Rendered table names both competitors.
        assert "dpcopula-kendall" in out and "identity" in out
        document = json_module.loads(output.read_text())
        assert document["scenario"] == "smoke-mixed"
        assert [m["method"] for m in document["methods"]] == [
            "dpcopula-kendall",
            "identity",
        ]

    def test_json_flag_prints_document(self, capsys):
        code = main(
            [
                "evaluate",
                "--scenario",
                "smoke-mixed",
                "--methods",
                "dpcopula-kendall",
                "--queries",
                "5",
                "--marginal-k",
                "1",
                "--max-marginals",
                "2",
                "--json",
            ]
        )
        assert code == 0
        import json as json_module

        document = json_module.loads(capsys.readouterr().out)
        assert document["epsilon"] == 1.0
