"""Shared fixtures: small deterministic datasets and generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Attribute, Dataset, Schema
from repro.data.synthetic import SyntheticSpec, gaussian_dependence_data


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def schema_2d() -> Schema:
    return Schema([Attribute("x", 50), Attribute("y", 40)])


@pytest.fixture
def small_dataset(schema_2d, rng) -> Dataset:
    """200 correlated records on a 50x40 grid."""
    latent = rng.multivariate_normal(
        [0, 0], [[1.0, 0.7], [0.7, 1.0]], size=200
    )
    x = np.clip(((latent[:, 0] + 3) / 6 * 50).astype(int), 0, 49)
    y = np.clip(((latent[:, 1] + 3) / 6 * 40).astype(int), 0, 39)
    return Dataset(np.column_stack([x, y]), schema_2d)


@pytest.fixture
def synthetic_4d() -> Dataset:
    """2000 records, 4 attributes, Gaussian dependence, fixed seed."""
    correlation = np.array(
        [
            [1.0, 0.6, 0.3, 0.1],
            [0.6, 1.0, 0.4, 0.2],
            [0.3, 0.4, 1.0, 0.5],
            [0.1, 0.2, 0.5, 1.0],
        ]
    )
    spec = SyntheticSpec(
        n_records=2000,
        domain_sizes=(60, 60, 60, 60),
        margins="gaussian",
        correlation=correlation,
    )
    return gaussian_dependence_data(spec, rng=7)


@pytest.fixture
def mixed_schema_dataset(rng) -> Dataset:
    """A dataset with two binary and two large-domain attributes."""
    n = 800
    gender = rng.integers(0, 2, size=n)
    flag = rng.integers(0, 2, size=n)
    age = rng.integers(0, 90, size=n)
    income = np.minimum((rng.exponential(40, size=n)).astype(int), 199)
    schema = Schema(
        [
            Attribute("gender", 2),
            Attribute("flag", 2),
            Attribute("age", 90),
            Attribute("income", 200),
        ]
    )
    return Dataset(np.column_stack([gender, flag, age, income]), schema)
