"""Tests for durable trace export: the sink hook and the JSONL ring."""

import json

import pytest

from repro.telemetry import trace
from repro.telemetry.export import TraceExporter, list_trace_files
from repro.telemetry.logs import bind_context
from repro.telemetry.metrics import REGISTRY
from repro.telemetry.tracing import Span


@pytest.fixture
def clean_sink():
    """Never leak an export sink into (or out of) a test."""
    before = trace.get_export_sink()
    trace.set_export_sink(None)
    yield
    trace.set_export_sink(before)


def _span(name="root", duration=0.5, payload=None) -> Span:
    node = Span(name, {"payload": payload} if payload else None)
    node.duration = duration
    return node


class TestExportSink:
    def test_sink_receives_completed_top_level_roots(self, clean_sink):
        seen = []
        trace.set_export_sink(seen.append)
        with trace.trace_root("outer") as root:
            with trace.span("stage"):
                pass
        assert seen == [root]
        assert seen[0].find("stage")

    def test_nested_roots_attach_to_parent_not_sink(self, clean_sink):
        seen = []
        trace.set_export_sink(seen.append)
        with trace.trace_root("outer") as outer:
            with trace.trace_root("inner"):
                pass
        assert seen == [outer]
        assert [child.name for child in outer.children] == ["inner"]

    def test_sink_exceptions_never_break_traced_code(self, clean_sink):
        def explode(root):
            raise RuntimeError("sink blew up")

        trace.set_export_sink(explode)
        with trace.trace_root("survives") as root:
            pass
        assert root.duration is not None

    def test_no_sink_means_no_overhead_hook(self, clean_sink):
        assert trace.get_export_sink() is None
        with trace.trace_root("plain") as root:
            pass
        assert root.duration is not None


class TestTraceExporter:
    def test_validates_ring_geometry(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            TraceExporter(tmp_path, max_bytes=16)
        with pytest.raises(ValueError, match="max_files"):
            TraceExporter(tmp_path, max_files=0)

    def test_record_shape_and_trace_id_fallback(self, tmp_path):
        exporter = TraceExporter(tmp_path, worker_label="7").install()
        try:
            exporter.export(_span("service.fit"))
        finally:
            exporter.uninstall()
        (line,) = (tmp_path / "trace-7.jsonl").read_text().splitlines()
        record = json.loads(line)
        # No bound correlation ids: the root name is the trace id.
        assert record["trace_id"] == "service.fit"
        assert record["job_id"] is None
        assert record["worker"] == "7"
        assert record["duration"] == 0.5
        assert record["slow"] is False
        assert record["root"]["name"] == "service.fit"

    def test_bound_request_id_is_the_trace_id(self, tmp_path):
        exporter = TraceExporter(tmp_path)
        with bind_context(request_id="req-1", job_id="job-9"):
            exporter.export(_span())
        record = json.loads(
            (tmp_path / "trace-main.jsonl").read_text().splitlines()[0]
        )
        assert record["trace_id"] == "req-1"
        assert record["job_id"] == "job-9"

    def test_slow_flag_uses_threshold(self, tmp_path):
        exporter = TraceExporter(tmp_path, slow_threshold=0.25)
        exporter.export(_span(duration=0.1))
        exporter.export(_span(duration=0.3))
        lines = (tmp_path / "trace-main.jsonl").read_text().splitlines()
        assert [json.loads(line)["slow"] for line in lines] == [False, True]

    def test_ring_rotation_keeps_max_files(self, tmp_path):
        exporter = TraceExporter(tmp_path, max_bytes=4096, max_files=2)
        rotations = REGISTRY.get("dpcopula_trace_export_rotations_total")
        before = rotations.value()
        payload = "x" * 3000
        for _ in range(4):
            exporter.export(_span(payload=payload))
        files = sorted(p.name for p in tmp_path.glob("trace-*.jsonl*"))
        assert files == ["trace-main.jsonl", "trace-main.jsonl.1"]
        assert rotations.value() == before + 3
        # Every surviving file holds whole, parseable records.
        for path in tmp_path.glob("trace-*.jsonl*"):
            for line in path.read_text().splitlines():
                assert json.loads(line)["root"]["attrs"]["payload"] == payload

    def test_single_file_ring_truncates_in_place(self, tmp_path):
        exporter = TraceExporter(tmp_path, max_bytes=4096, max_files=1)
        payload = "y" * 3000
        for _ in range(3):
            exporter.export(_span(payload=payload))
        files = list(tmp_path.glob("trace-*.jsonl*"))
        assert [p.name for p in files] == ["trace-main.jsonl"]
        assert files[0].stat().st_size <= 4096

    def test_export_errors_are_swallowed_and_counted(self, tmp_path):
        exporter = TraceExporter(tmp_path / "missing")
        # Directory never created (install() not called): the append
        # fails, the error is counted, and nothing raises.
        errors = REGISTRY.get("dpcopula_trace_export_errors_total")
        before = errors.value()
        exporter.export(_span())
        assert errors.value() == before + 1
        assert exporter.exported == 0

    def test_uninstall_only_removes_own_sink(self, tmp_path, clean_sink):
        first = TraceExporter(tmp_path / "a").install()
        second = TraceExporter(tmp_path / "b").install()
        first.uninstall()  # not the active sink: must be a no-op
        assert trace.get_export_sink() == second.export
        second.uninstall()
        assert trace.get_export_sink() is None

    def test_end_to_end_through_trace_root(self, tmp_path, clean_sink):
        exporter = TraceExporter(tmp_path).install()
        exported = REGISTRY.get("dpcopula_traces_exported_total")
        before = exported.value()
        with bind_context(request_id="req-e2e"):
            with trace.trace_root("http.request", route="sample"):
                with trace.span("engine.sample"):
                    pass
        exporter.uninstall()
        (line,) = (tmp_path / "trace-main.jsonl").read_text().splitlines()
        record = json.loads(line)
        assert record["trace_id"] == "req-e2e"
        assert record["root"]["attrs"]["route"] == "sample"
        assert record["root"]["children"][0]["name"] == "engine.sample"
        assert exported.value() == before + 1

    def test_inventory_lists_ring_files(self, tmp_path):
        exporter = TraceExporter(tmp_path).install()
        exporter.export(_span())
        exporter.uninstall()
        inventory = list_trace_files(tmp_path)
        assert [entry["file"] for entry in inventory] == ["trace-main.jsonl"]
        assert inventory[0]["bytes"] > 0
        assert list_trace_files(tmp_path / "nope") == []
