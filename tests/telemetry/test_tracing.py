"""Tests for span tracing: nesting, worker flow, and determinism."""

import numpy as np
import pytest

from repro.parallel import BACKENDS, ExecutionContext
from repro.stats.kendall import kendall_tau_matrix
from repro.telemetry import trace
from repro.telemetry.tracing import Span, call_collected, is_active, render


def _square(task, shared):
    return task * task


class TestSpanBasics:
    def test_inactive_span_is_a_no_op(self):
        assert not is_active()
        with trace.span("stage", m=4) as node:
            assert node is None
        assert not is_active()

    def test_trace_root_activates_and_deactivates(self):
        with trace.trace_root("run") as root:
            assert is_active()
        assert not is_active()
        assert root.duration is not None and root.duration >= 0

    def test_nesting_builds_the_tree_in_order(self):
        with trace.trace_root("run") as root:
            with trace.span("fit"):
                with trace.span("margins"):
                    pass
                with trace.span("correlation"):
                    pass
            with trace.span("sampling"):
                pass
        assert [c.name for c in root.children] == ["fit", "sampling"]
        assert [c.name for c in root.children[0].children] == [
            "margins",
            "correlation",
        ]
        fit = root.children[0]
        assert fit.duration >= sum(c.duration for c in fit.children) * 0.5

    def test_attributes_are_recorded(self):
        with trace.trace_root("run") as root:
            with trace.span("fit", method="kendall", n=100):
                pass
        assert root.children[0].attrs == {"method": "kendall", "n": 100}

    def test_exception_marks_the_span_and_propagates(self):
        with pytest.raises(RuntimeError):
            with trace.trace_root("run") as root:
                with trace.span("fit"):
                    raise RuntimeError("boom")
        (fit,) = root.children
        assert fit.attrs["error"] == "RuntimeError"
        assert fit.duration is not None

    def test_nested_roots_compose(self):
        with trace.trace_root("outer") as outer:
            with trace.trace_root("inner"):
                with trace.span("stage"):
                    pass
        (inner,) = outer.children
        assert inner.name == "inner"
        assert inner.children[0].name == "stage"

    def test_find_walks_the_whole_tree(self):
        with trace.trace_root("run") as root:
            with trace.span("a"):
                with trace.span("target"):
                    pass
            with trace.span("target"):
                pass
        assert len(root.find("target")) == 2

    def test_export_round_trip(self):
        with trace.trace_root("run") as root:
            with trace.span("fit", m=4):
                pass
        clone = Span.from_dict(root.to_dict())
        assert clone.to_dict() == root.to_dict()

    def test_call_collected_exports_a_plain_dict(self):
        result, exported = call_collected("chunk", lambda: 42, tasks=1)
        assert result == 42
        assert exported["name"] == "chunk"
        assert exported["attrs"] == {"tasks": 1}
        assert exported["duration"] >= 0

    def test_attach_grafts_under_the_active_span(self):
        _, exported = call_collected("chunk", lambda: None)
        with trace.trace_root("run") as root:
            trace.attach(exported)
        assert root.children[0].name == "chunk"
        # Attaching outside a trace is a silent no-op.
        trace.attach(exported)

    def test_render_formats_a_nested_tree(self):
        with trace.trace_root("run", method="kendall") as root:
            with trace.span("fit"):
                pass
        text = render(root)
        first, second = text.splitlines()
        assert first.startswith("run [method=kendall]")
        assert second.startswith("  fit")
        assert second.strip().endswith("s")


class TestSpansAcrossBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_map_tasks_results_identical_with_tracing_on(self, backend):
        context = ExecutionContext(backend, max_workers=2)
        tasks = list(range(16))
        plain = context.map_tasks(_square, tasks)
        with trace.trace_root("run"):
            traced = context.map_tasks(_square, tasks)
        assert traced == plain

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_map_tasks_span_tree_shape(self, backend):
        context = ExecutionContext(backend, max_workers=2)
        with trace.trace_root("run") as root:
            context.map_tasks(_square, list(range(8)))
        (map_span,) = root.children
        assert map_span.name == "parallel.map_tasks"
        assert map_span.attrs["backend"] == backend
        assert map_span.attrs["tasks"] == 8
        if context.is_serial:
            assert map_span.children == []
        else:
            chunks = map_span.children
            assert all(c.name == "parallel.chunk" for c in chunks)
            assert sum(c.attrs["tasks"] for c in chunks) == 8
            assert all(c.duration is not None for c in chunks)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_kendall_matrix_bitwise_identical_with_tracing(self, backend):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 50, size=(500, 5)).astype(float)
        serial = kendall_tau_matrix(values)
        context = ExecutionContext(backend, max_workers=2)
        with trace.trace_root("run") as root:
            traced = kendall_tau_matrix(values, context=context)
        np.testing.assert_array_equal(serial, traced)
        assert root.find("parallel.map_tasks"), "fan-out span missing"

    def test_fit_profile_covers_the_pipeline_stages(self, small_dataset):
        from repro.core.dpcopula import DPCopulaKendall

        synthesizer = DPCopulaKendall(epsilon=1.0, rng=0)
        with trace.trace_root("run") as root:
            synthesizer.fit(small_dataset)
            synthesizer.sample(100)
        for stage in ("fit", "margins", "correlation", "sampling"):
            assert root.find(stage), f"missing span {stage!r}"

    def test_tracing_never_perturbs_fit_randomness(self, small_dataset):
        from repro.core.dpcopula import DPCopulaKendall

        plain = DPCopulaKendall(epsilon=1.0, rng=123)
        plain.fit(small_dataset)
        untraced = plain.sample(150)

        traced_synth = DPCopulaKendall(epsilon=1.0, rng=123)
        with trace.trace_root("run"):
            traced_synth.fit(small_dataset)
            traced = traced_synth.sample(150)
        np.testing.assert_array_equal(untraced.values, traced.values)

    def test_stage_histogram_is_fed(self):
        from repro.telemetry.metrics import REGISTRY

        histogram = REGISTRY.get("dpcopula_stage_seconds")
        before = histogram.count(stage="unit_stage")
        with trace.trace_root("unit_root"):
            with trace.span("unit_stage"):
                pass
        assert histogram.count(stage="unit_stage") == before + 1
