"""Tests pinning the structured-logging JSON schema and configuration."""

import io
import json
import logging

import pytest

from repro.telemetry import logs
from repro.telemetry.logs import (
    LOG_ENV_VAR,
    bind_context,
    configure_logging,
    current_context,
    get_logger,
    resolve_level,
)


@pytest.fixture(autouse=True)
def clean_logging(monkeypatch):
    """Isolate each test: no env override, logging restored to off after."""
    monkeypatch.delenv(LOG_ENV_VAR, raising=False)
    yield
    monkeypatch.delenv(LOG_ENV_VAR, raising=False)
    configure_logging(None)


def capture(level="debug"):
    stream = io.StringIO()
    configure_logging(level, stream=stream)
    return stream


def lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestSchema:
    def test_core_keys_and_order(self):
        stream = capture()
        get_logger("unit").info("something happened")
        (record,) = lines(stream)
        assert list(record)[:4] == ["ts", "level", "logger", "event"]
        assert record["level"] == "info"
        assert record["logger"] == "dpcopula.unit"
        assert record["event"] == "something happened"
        assert isinstance(record["ts"], float)

    def test_extras_land_as_top_level_keys(self):
        stream = capture()
        get_logger("unit").info("fit done", extra={"m": 4, "seconds": 1.5})
        (record,) = lines(stream)
        assert record["m"] == 4
        assert record["seconds"] == 1.5

    def test_correlation_ids_appear_only_when_bound(self):
        stream = capture()
        logger = get_logger("unit")
        logger.info("outside")
        with bind_context(request_id="req1", job_id="job1"):
            logger.info("inside")
        outside, inside = lines(stream)
        assert "request_id" not in outside and "job_id" not in outside
        assert inside["request_id"] == "req1"
        assert inside["job_id"] == "job1"

    def test_bind_context_restores_on_exit(self):
        with bind_context(request_id="outer"):
            with bind_context(request_id="inner"):
                assert current_context()["request_id"] == "inner"
            assert current_context()["request_id"] == "outer"
        assert current_context() == {}

    def test_exceptions_carry_the_traceback(self):
        stream = capture()
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            get_logger("unit").exception("fit failed")
        (record,) = lines(stream)
        assert record["event"] == "fit failed"
        assert "RuntimeError: boom" in record["exc"]
        assert "Traceback" in record["exc"]

    def test_non_serializable_extras_are_stringified(self):
        stream = capture()
        get_logger("unit").info("x", extra={"obj": object()})
        (record,) = lines(stream)
        assert record["obj"].startswith("<object object")


class TestConfiguration:
    def test_off_by_default(self):
        assert resolve_level(None) is None

    def test_env_beats_configured_level(self, monkeypatch):
        monkeypatch.setenv(LOG_ENV_VAR, "debug")
        assert resolve_level("error") == "debug"

    def test_env_off_silences_configured_level(self, monkeypatch):
        monkeypatch.setenv(LOG_ENV_VAR, "off")
        assert resolve_level("debug") is None

    def test_unknown_env_value_falls_back_to_info(self, monkeypatch):
        monkeypatch.setenv(LOG_ENV_VAR, "shouting")
        assert resolve_level(None) == "info"

    def test_unknown_explicit_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            resolve_level("shouting")

    def test_reconfiguring_replaces_rather_than_stacks(self):
        stream = capture("info")
        stream2 = io.StringIO()
        configure_logging("info", stream=stream2)
        get_logger("unit").info("once")
        assert stream.getvalue() == ""
        assert len(lines(stream2)) == 1

    def test_level_filtering(self):
        stream = capture("warning")
        logger = get_logger("unit")
        logger.debug("quiet")
        logger.info("quiet")
        logger.warning("loud")
        records = lines(stream)
        assert [r["event"] for r in records] == ["loud"]

    def test_off_resets_the_namespace_level(self):
        capture("debug")
        configure_logging("off")
        root = logging.getLogger("dpcopula")
        assert root.level == logging.NOTSET
        assert not any(
            getattr(h, "_dpcopula_telemetry", False) for h in root.handlers
        )

    def test_importing_the_library_emits_nothing(self):
        # The namespace keeps a NullHandler when unconfigured, so no
        # "No handlers could be found" warnings ever reach a user.
        configure_logging(None)
        root = logging.getLogger("dpcopula")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_service_config_level_flows_through(self, tmp_path):
        from repro.service import ServiceConfig, SynthesisService

        stream_err = io.StringIO()
        service = SynthesisService(
            ServiceConfig(data_dir=tmp_path / "data", log_level="off")
        )
        try:
            assert stream_err.getvalue() == ""
        finally:
            service.close()
        assert logs.resolve_level(None) is None
