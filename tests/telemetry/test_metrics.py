"""Unit tests for the dependency-free metrics registry."""

import json
import threading

import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c_total")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labeled_series_are_independent(self):
        counter = Counter("c_total")
        counter.inc(status="done")
        counter.inc(status="done")
        counter.inc(status="failed")
        assert counter.value(status="done") == 2.0
        assert counter.value(status="failed") == 1.0
        assert counter.value(status="missing") == 0.0

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c_total").inc(-1)

    def test_threaded_increments_are_lossless(self):
        counter = Counter("c_total")

        def hammer():
            for _ in range(1000):
                counter.inc(worker="w")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(worker="w") == 8000.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value() == 3.0

    def test_labeled(self):
        gauge = Gauge("g")
        gauge.set(1.5, dataset="a")
        gauge.set(2.5, dataset="b")
        assert gauge.value(dataset="a") == 1.5
        assert gauge.value(dataset="b") == 2.5


class TestHistogram:
    def test_cumulative_bucket_semantics(self):
        histogram = Histogram("h_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        (series,) = histogram.snapshot_series()
        # le-semantics: each bound counts observations <= bound.
        assert series["buckets"] == {"0.1": 1, "1": 3, "10": 4, "+Inf": 5}
        assert series["count"] == 5
        assert series["sum"] == pytest.approx(56.05)

    def test_boundary_value_lands_in_its_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(1.0)
        (series,) = histogram.snapshot_series()
        assert series["buckets"]["1"] == 1

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("h", buckets=())

    def test_threaded_observations_are_lossless(self):
        histogram = Histogram("h", buckets=(10.0,))

        def hammer():
            for i in range(500):
                histogram.observe(float(i % 20))

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count() == 3000


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total")
        second = registry.counter("x_total")
        assert first is second

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "finished jobs").inc(status="done")
        registry.gauge("depth").set(3)
        registry.histogram("latency", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        # Round-trips through JSON without custom encoders.
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["jobs_total"]["type"] == "counter"
        assert snapshot["jobs_total"]["series"][0]["labels"] == {"status": "done"}
        assert snapshot["depth"]["series"][0]["value"] == 3.0
        assert snapshot["latency"]["series"][0]["count"] == 1

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "finished jobs").inc(2, status="done")
        registry.histogram("latency_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_prometheus()
        assert "# HELP jobs_total finished jobs" in text
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{status="done"} 2' in text
        assert "# TYPE latency_seconds histogram" in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_sum 0.05" in text
        assert "latency_seconds_count 1" in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(path='a"b\\c\nd')
        line = registry.render_prometheus().splitlines()[-1]
        assert line == 'c_total{path="a\\"b\\\\c\\nd"} 1'

    def test_reset_clears_series_but_keeps_instruments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        registry.reset()
        assert registry.counter("c_total") is counter
        assert counter.value() == 0.0

    def test_default_registry_has_pipeline_instruments(self):
        # Importing the instrumented modules registers their metrics.
        import repro.parallel  # noqa: F401
        import repro.service.app  # noqa: F401

        for name in (
            "dpcopula_stage_seconds",
            "dpcopula_parallel_tasks_total",
            "dpcopula_fit_seconds",
            "dpcopula_sample_seconds",
        ):
            assert REGISTRY.get(name) is not None, name


class TestExemplars:
    def test_exemplar_lands_in_matching_bucket(self):
        histogram = Histogram("h_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05, exemplar="trace-fast")
        histogram.observe(0.5, exemplar="trace-mid")
        histogram.observe(5.0, exemplar="trace-slow")
        (series,) = histogram.snapshot_series()
        exemplars = series["exemplars"]
        assert exemplars["0.1"]["trace_id"] == "trace-fast"
        assert exemplars["1"]["trace_id"] == "trace-mid"
        assert exemplars["+Inf"]["trace_id"] == "trace-slow"
        assert exemplars["0.1"]["value"] == 0.05

    def test_last_exemplar_per_bucket_wins(self):
        histogram = Histogram("h_seconds", buckets=(1.0,))
        histogram.observe(0.2, exemplar="first")
        histogram.observe(0.3, exemplar="second")
        (series,) = histogram.snapshot_series()
        assert series["exemplars"]["1"]["trace_id"] == "second"

    def test_observation_without_exemplar_keeps_counts_clean(self):
        histogram = Histogram("h_seconds", buckets=(1.0,))
        histogram.observe(0.2)
        (series,) = histogram.snapshot_series()
        assert "exemplars" not in series
        assert series["count"] == 1

    def test_exemplars_never_reach_text_exposition(self):
        # The 0.0.4 text format predates exemplars; classic parsers
        # would reject a line carrying one.
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "h_seconds", "Latency", buckets=(1.0,)
        )
        histogram.observe(0.2, exemplar="trace-1")
        text = registry.render_prometheus()
        assert "trace-1" not in text
        assert "exemplar" not in text
        # ...but they are present in the JSON snapshot.
        snapshot = registry.snapshot()
        series = snapshot["h_seconds"]["series"][0]
        assert series["exemplars"]["1"]["trace_id"] == "trace-1"


class TestBucketMonotonicity:
    def test_cumulative_counts_are_monotone_and_end_at_count(self):
        histogram = Histogram("h_seconds", buckets=(0.01, 0.1, 1.0, 10.0))
        for value in (0.005, 0.05, 0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        (series,) = histogram.snapshot_series()
        cumulative = list(series["buckets"].values())
        assert cumulative == sorted(cumulative)
        assert list(series["buckets"])[-1] == "+Inf"
        assert cumulative[-1] == series["count"] == 6


class TestLatencyBucketConfig:
    def test_parse_rejects_garbage(self):
        from repro.telemetry.metrics import parse_latency_buckets

        for bad in ("", "  ", "a,b", "0.1,oops", "0,1", "-1,2", "inf,1"):
            with pytest.raises(ValueError):
                parse_latency_buckets(bad)

    def test_parse_sorts_and_dedupes(self):
        from repro.telemetry.metrics import parse_latency_buckets

        assert parse_latency_buckets("5, 0.5,5 ,0.05") == (0.05, 0.5, 5.0)

    def test_configure_rebuckets_only_default_latency_histograms(self):
        registry = MetricsRegistry()
        latency = registry.histogram("latency_seconds", "Latency")
        sizes = registry.histogram("fanout", "Fanout", buckets=(2.0, 8.0))
        registry.configure_latency_buckets((0.5, 2.0))
        assert latency.bounds == (0.5, 2.0)
        assert sizes.bounds == (2.0, 8.0)
        # Histograms created *after* configuration pick the override up.
        late = registry.histogram("late_seconds", "Later latency")
        assert late.bounds == (0.5, 2.0)

    def test_configure_none_restores_builtin_spread(self):
        from repro.telemetry.metrics import DEFAULT_LATENCY_BUCKETS

        registry = MetricsRegistry()
        latency = registry.histogram("latency_seconds", "Latency")
        registry.configure_latency_buckets((0.5,))
        registry.configure_latency_buckets(None)
        assert latency.bounds == tuple(DEFAULT_LATENCY_BUCKETS)

    def test_rebucket_clears_recorded_series(self):
        histogram = Histogram("h_seconds", buckets=(1.0,))
        histogram.observe(0.5)
        histogram.rebucket((0.25, 2.5))
        assert histogram.count() == 0
        assert histogram.bounds == (0.25, 2.5)

    def test_rebucket_rejects_empty_and_nan(self):
        histogram = Histogram("h_seconds", buckets=(1.0,))
        with pytest.raises(ValueError):
            histogram.rebucket(())
        with pytest.raises(ValueError):
            histogram.rebucket((float("nan"),))
