"""Tests for cross-worker metrics snapshots and fleet-level exposition."""

import json

from repro.telemetry.aggregate import (
    aggregate_snapshot,
    prune_worker_snapshot,
    read_worker_snapshots,
    render_prometheus_multi,
    worker_snapshot_path,
    write_snapshot,
)
from repro.telemetry.metrics import MetricsRegistry


def _registry_with_traffic(requests=3.0, route="sample"):
    registry = MetricsRegistry()
    counter = registry.counter("dpcopula_http_requests_total", "Requests")
    counter.inc(requests, route=route)
    return registry


class TestSnapshotFiles:
    def test_write_then_read_round_trip(self, tmp_path):
        registry = _registry_with_traffic(5.0)
        path = write_snapshot(registry, tmp_path, 3)
        assert path == worker_snapshot_path(tmp_path, 3)
        snapshots = read_worker_snapshots(tmp_path)
        assert list(snapshots) == [3]
        doc = snapshots[3]
        assert doc["worker"] == 3
        assert doc["pid"] > 0
        series = doc["metrics"]["dpcopula_http_requests_total"]["series"]
        assert series[0]["value"] == 5.0

    def test_torn_and_foreign_files_are_skipped(self, tmp_path):
        write_snapshot(_registry_with_traffic(), tmp_path, 0)
        (tmp_path / "worker-1.json").write_text("{not json")
        (tmp_path / "worker-x.json").write_text("{}")
        snapshots = read_worker_snapshots(tmp_path)
        assert list(snapshots) == [0]

    def test_read_missing_directory_is_empty(self, tmp_path):
        assert read_worker_snapshots(tmp_path / "missing") == {}

    def test_prune_removes_stale_snapshot(self, tmp_path):
        write_snapshot(_registry_with_traffic(), tmp_path, 2)
        assert prune_worker_snapshot(tmp_path, 2) is True
        assert not worker_snapshot_path(tmp_path, 2).exists()
        # Second prune finds nothing: best-effort, not an error.
        assert prune_worker_snapshot(tmp_path, 2) is False


class TestFleetAggregation:
    def test_worker_label_is_injected_per_series(self, tmp_path):
        write_snapshot(_registry_with_traffic(1.0, route="fit"), tmp_path, 0)
        write_snapshot(_registry_with_traffic(2.0, route="fit"), tmp_path, 1)
        merged = aggregate_snapshot(read_worker_snapshots(tmp_path))
        series = merged["dpcopula_http_requests_total"]["series"]
        assert [s["labels"] for s in series] == [
            {"route": "fit", "worker": "0"},
            {"route": "fit", "worker": "1"},
        ]
        assert sorted(s["value"] for s in series) == [1.0, 2.0]

    def test_render_merges_workers_into_one_exposition(self, tmp_path):
        write_snapshot(_registry_with_traffic(1.0), tmp_path, 0)
        write_snapshot(_registry_with_traffic(4.0), tmp_path, 1)
        text = render_prometheus_multi(read_worker_snapshots(tmp_path))
        assert "# TYPE dpcopula_http_requests_total counter" in text
        assert (
            'dpcopula_http_requests_total{route="sample",worker="0"} 1' in text
        )
        assert (
            'dpcopula_http_requests_total{route="sample",worker="1"} 4' in text
        )
        assert text.endswith("\n")

    def test_render_escapes_label_values(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("odd_total", "Odd labels").inc(
            1.0, route='quo"te\\slash\nline'
        )
        write_snapshot(registry, tmp_path, 0)
        text = render_prometheus_multi(read_worker_snapshots(tmp_path))
        assert 'route="quo\\"te\\\\slash\\nline"' in text

    def test_render_histograms_with_worker_label(self, tmp_path):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "probe_seconds", "Probe latency", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        write_snapshot(registry, tmp_path, 4)
        text = render_prometheus_multi(read_worker_snapshots(tmp_path))
        assert 'probe_seconds_bucket{worker="4",le="0.1"} 1' in text
        assert 'probe_seconds_bucket{worker="4",le="1"} 2' in text
        assert 'probe_seconds_bucket{worker="4",le="+Inf"} 2' in text
        assert 'probe_seconds_count{worker="4"} 2' in text

    def test_snapshot_document_is_stable_json(self, tmp_path):
        write_snapshot(_registry_with_traffic(), tmp_path, 0)
        raw = worker_snapshot_path(tmp_path, 0).read_text()
        assert raw == json.dumps(json.loads(raw), sort_keys=True)
