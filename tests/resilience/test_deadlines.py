"""Deadline semantics, including propagation across execution backends."""

from __future__ import annotations

import pickle
import time

import pytest

from repro.parallel import ExecutionContext
from repro.resilience.deadlines import (
    Deadline,
    DeadlineExceeded,
    current_deadline,
    deadline_scope,
)


class TestDeadline:
    def test_remaining_counts_down(self):
        deadline = Deadline.after(10.0)
        assert 9.0 < deadline.remaining() <= 10.0
        assert not deadline.expired()

    def test_expired_deadline_raises_with_overrun(self):
        deadline = Deadline.after(0.0)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("unit test")
        assert excinfo.value.overrun >= 0.0
        assert "unit test" in str(excinfo.value)

    def test_unexpired_check_is_a_noop(self):
        Deadline.after(60.0).check("fine")

    @pytest.mark.parametrize("bad", [-1.0, float("nan")])
    def test_invalid_budgets_rejected(self, bad):
        with pytest.raises(ValueError):
            Deadline(bad)

    def test_pickle_ships_remaining_budget(self):
        # Monotonic clocks are per-process: the pickled form must carry
        # remaining seconds, not an absolute expiry.
        deadline = Deadline.after(5.0)
        clone = pickle.loads(pickle.dumps(deadline))
        assert isinstance(clone, Deadline)
        assert abs(clone.remaining() - deadline.remaining()) < 0.5

    def test_pickled_expired_deadline_stays_expired(self):
        clone = pickle.loads(pickle.dumps(Deadline.after(0.0)))
        assert clone.expired()


class TestDeadlineScope:
    def test_default_is_no_deadline(self):
        assert current_deadline() is None

    def test_scope_installs_and_restores(self):
        deadline = Deadline.after(1.0)
        with deadline_scope(deadline):
            assert current_deadline() is deadline
            inner = Deadline.after(2.0)
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_none_clears_an_inherited_deadline(self):
        with deadline_scope(Deadline.after(1.0)):
            with deadline_scope(None):
                assert current_deadline() is None


def _identity(task, shared):
    return task


def _slow_identity(task, shared):
    time.sleep(0.05)
    return task


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
class TestMapTasksPropagation:
    def test_expired_deadline_stops_the_fanout(self, backend):
        context = ExecutionContext(backend=backend, max_workers=2)
        with pytest.raises(DeadlineExceeded):
            context.map_tasks(
                _identity, list(range(8)), deadline=Deadline.after(0.0)
            )

    def test_ambient_deadline_is_picked_up(self, backend):
        context = ExecutionContext(backend=backend, max_workers=2)
        with deadline_scope(Deadline.after(0.0)):
            with pytest.raises(DeadlineExceeded):
                context.map_tasks(_identity, list(range(8)))

    def test_generous_deadline_changes_nothing(self, backend):
        context = ExecutionContext(backend=backend, max_workers=2)
        result = context.map_tasks(
            _identity, list(range(8)), deadline=Deadline.after(60.0)
        )
        assert result == list(range(8))

    def test_mid_fanout_expiry_cancels_remaining_tasks(self, backend):
        # 8 tasks x 50ms against a 120ms budget: the deadline lapses
        # partway through, and the between-task check catches it.
        context = ExecutionContext(backend=backend, max_workers=1)
        with pytest.raises(DeadlineExceeded):
            context.map_tasks(
                _slow_identity,
                list(range(8)),
                deadline=Deadline.after(0.12),
                chunk_size=8,
            )
