"""Unit tests for the retry policy and the no-retry wall."""

from __future__ import annotations

import pytest

from repro.dp.budget import BudgetExhaustedError
from repro.resilience.deadlines import Deadline, DeadlineExceeded, deadline_scope
from repro.resilience.retry import (
    NEVER_RETRY,
    RetryPolicy,
    call_with_retry,
    is_retryable,
    mark_no_retry,
)


class TestBackoffSchedule:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        assert [policy.backoff(a) for a in range(5)] == [
            0.1,
            0.2,
            0.4,
            0.5,
            0.5,
        ]

    def test_delays_are_deterministic_for_a_seed(self):
        policy = RetryPolicy(max_attempts=4, jitter=0.1)
        assert policy.delays(rng=7) == policy.delays(rng=7)
        assert policy.delays(rng=7) != policy.delays(rng=8)

    def test_zero_jitter_matches_backoff_exactly(self):
        policy = RetryPolicy(max_attempts=4, jitter=0.0)
        assert policy.delays() == [policy.backoff(a) for a in range(3)]

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, multiplier=1.0, max_delay=1.0, jitter=0.2
        )
        for delay in policy.delays(rng=3):
            assert 0.8 <= delay <= 1.2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -0.1},
            {"multiplier": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_invalid_policies_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestCallWithRetry:
    def _flaky(self, failures, exc_type=OSError):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise exc_type(f"transient #{calls['n']}")
            return "ok"

        return fn, calls

    def test_retries_transient_failures_until_success(self):
        fn, calls = self._flaky(2)
        sleeps = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)
        result = call_with_retry(fn, policy, "op", sleep=sleeps.append)
        assert result == "ok"
        assert calls["n"] == 3
        assert sleeps == [policy.backoff(0), policy.backoff(1)]

    def test_exhausted_attempts_raise_the_last_error(self):
        fn, calls = self._flaky(10)
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        with pytest.raises(OSError, match="transient #3"):
            call_with_retry(fn, policy, "op", sleep=lambda _: None)
        assert calls["n"] == 3

    def test_unclassified_exceptions_propagate_immediately(self):
        fn, calls = self._flaky(10, exc_type=ValueError)
        with pytest.raises(ValueError):
            call_with_retry(fn, RetryPolicy(max_attempts=5), "op")
        assert calls["n"] == 1

    @pytest.mark.parametrize(
        "exc",
        [BudgetExhaustedError("refused"), DeadlineExceeded("too late")],
    )
    def test_never_retry_wall_beats_retry_on(self, exc):
        # Even when the caller explicitly classifies the type as
        # retryable, privacy decisions and dead deadlines do not retry.
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            raise exc

        with pytest.raises(type(exc)):
            call_with_retry(
                fn,
                RetryPolicy(max_attempts=5, base_delay=0.0),
                "op",
                retry_on=(Exception,),
            )
        assert calls["n"] == 1

    def test_mark_no_retry_stops_an_otherwise_retryable_error(self):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            raise mark_no_retry(OSError("permanent"))

        with pytest.raises(OSError):
            call_with_retry(fn, RetryPolicy(max_attempts=5, base_delay=0.0), "op")
        assert calls["n"] == 1

    def test_ambient_deadline_suppresses_pointless_retries(self):
        fn, calls = self._flaky(10)
        policy = RetryPolicy(max_attempts=5, base_delay=30.0, jitter=0.0)
        with deadline_scope(Deadline.after(0.5)):
            with pytest.raises(OSError, match="transient #1"):
                call_with_retry(fn, policy, "op", sleep=lambda _: None)
        assert calls["n"] == 1

    def test_on_retry_hook_sees_each_failure(self):
        fn, _ = self._flaky(2)
        seen = []
        call_with_retry(
            fn,
            RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
            "op",
            sleep=lambda _: None,
            on_retry=lambda exc, attempt: seen.append((type(exc).__name__, attempt)),
        )
        assert seen == [("OSError", 0), ("OSError", 1)]


class TestIsRetryable:
    def test_classification(self):
        assert is_retryable(OSError("x"))
        assert not is_retryable(ValueError("x"))
        assert not is_retryable(BudgetExhaustedError("x"))
        assert not is_retryable(mark_no_retry(OSError("x")))
        for exc_type in NEVER_RETRY:
            assert not is_retryable(exc_type("x"), retry_on=(BaseException,))
