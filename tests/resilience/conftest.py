"""Shared fixtures for the resilience and chaos suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience import faults


@pytest.fixture(autouse=True)
def disarm_faults(monkeypatch):
    """Every test starts and ends with no fault plan armed.

    Fault specs are configured per test (via ``faults.configure`` or the
    env vars); this guard stops a forgotten plan from leaking into the
    rest of the suite.
    """
    monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)
    monkeypatch.delenv(faults.FAULTS_LATCH_ENV_VAR, raising=False)
    faults.configure(None)
    yield
    faults.configure(None)


@pytest.fixture
def service_csv() -> str:
    """A 200-record correlated 2-attribute dataset as CSV text."""
    gen = np.random.default_rng(99)
    latent = gen.multivariate_normal([0, 0], [[1, 0.6], [0.6, 1]], size=200)
    a = np.clip(((latent[:, 0] + 3) / 6 * 30).astype(int), 0, 29)
    b = np.clip(((latent[:, 1] + 3) / 6 * 40).astype(int), 0, 39)
    return "a[30],b[40]\n" + "\n".join(f"{x},{y}" for x, y in zip(a, b)) + "\n"
