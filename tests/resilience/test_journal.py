"""The durable job journal: records, checkpoints, recovery."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.resilience import faults
from repro.resilience.journal import JobJournal, JobRecord


@pytest.fixture
def journal(tmp_path) -> JobJournal:
    return JobJournal(tmp_path / "jobs")


def _record(job_id="job1", **overrides) -> JobRecord:
    fields = dict(
        job_id=job_id,
        dataset_id="ds",
        method="kendall",
        epsilon=1.0,
        k=8.0,
        seed=42,
    )
    fields.update(overrides)
    return JobRecord(**fields)


class TestLifecycleRecords:
    def test_create_load_roundtrip(self, journal):
        journal.create(_record())
        loaded = journal.load("job1")
        assert loaded.state == "queued"
        assert loaded.seed == 42
        assert "job1" in journal

    def test_duplicate_create_rejected(self, journal):
        journal.create(_record())
        with pytest.raises(ValueError, match="already journaled"):
            journal.create(_record())

    def test_update_persists_fields(self, journal):
        journal.create(_record())
        journal.update("job1", state="running", attempts=1)
        reread = JobJournal(journal.directory).load("job1")
        assert reread.state == "running"
        assert reread.attempts == 1

    def test_update_rejects_unknown_fields(self, journal):
        journal.create(_record())
        with pytest.raises(AttributeError):
            journal.update("job1", bogus=True)

    def test_load_unknown_job_raises(self, journal):
        with pytest.raises(KeyError):
            journal.load("ghost")

    def test_delete_removes_record(self, journal):
        journal.create(_record())
        journal.delete("job1")
        assert "job1" not in journal
        journal.delete("job1")  # idempotent

    def test_list_skips_unreadable_records(self, journal):
        journal.create(_record())
        (journal.directory / "broken.json").write_text("{not json")
        assert [r.job_id for r in journal.list()] == ["job1"]

    def test_mark_stage_computed_counts_computations(self, journal):
        journal.create(_record())
        journal.mark_stage_computed("job1", "margins")
        journal.mark_stage_computed("job1", "margins")
        assert journal.load("job1").stage_computed == {"margins": 2}


class TestCancellation:
    def test_request_cancel_sets_flag(self, journal):
        journal.create(_record())
        journal.request_cancel("job1")
        assert journal.cancel_requested("job1")

    def test_unknown_job_is_not_cancelled(self, journal):
        assert not journal.cancel_requested("ghost")


class TestStageCheckpoints:
    def test_save_load_roundtrip(self, journal):
        journal.create(_record())
        arrays = {"margin_0": np.arange(5.0), "margin_1": np.ones(3)}
        journal.save_stage("job1", "margins", arrays)
        loaded = journal.load_stage("job1", "margins")
        assert set(loaded) == set(arrays)
        np.testing.assert_array_equal(loaded["margin_0"], arrays["margin_0"])

    def test_absent_stage_is_none(self, journal):
        assert journal.load_stage("job1", "margins") is None

    def test_torn_checkpoint_is_treated_as_absent(self, journal):
        journal.create(_record())
        faults.configure("journal.save_stage:truncate:0.3")
        journal.save_stage("job1", "margins", {"m": np.arange(10.0)})
        faults.configure(None)
        assert journal.load_stage("job1", "margins") is None

    def test_has_stage_checkpoints_tracks_disk_state(self, journal):
        journal.create(_record())
        assert not journal.has_stage_checkpoints("job1")
        journal.save_stage("job1", "margins", {"m": np.arange(3.0)})
        # The lifecycle record says nothing about the stage, yet the
        # checkpoint on disk must be visible: the refund guard keys off
        # exactly this (a durable release the record failed to mention).
        assert journal.load("job1").stage_computed == {}
        assert journal.has_stage_checkpoints("job1")
        journal.drop_stages("job1")
        assert not journal.has_stage_checkpoints("job1")

    def test_drop_stages_deletes_checkpoints(self, journal):
        journal.create(_record())
        journal.save_stage("job1", "margins", {"m": np.arange(3.0)})
        journal.save_stage("job1", "correlation", {"c": np.eye(2)})
        journal.drop_stages("job1")
        assert journal.load_stage("job1", "margins") is None
        assert journal.load_stage("job1", "correlation") is None


class TestRecovery:
    def test_recoverable_returns_active_jobs_oldest_first(self, journal):
        journal.create(_record("a", submitted_at=3.0))
        journal.create(_record("b", submitted_at=1.0, state="running"))
        journal.create(_record("c", submitted_at=2.0, state="done"))
        assert [r.job_id for r in journal.recoverable()] == ["b", "a"]

    def test_void_closes_out_a_job(self, journal):
        journal.create(_record())
        journal.void("job1", "dataset gone")
        record = journal.load("job1")
        assert record.state == "voided"
        assert record.error == "dataset gone"
        assert journal.recoverable() == []

    def test_records_are_valid_json_on_disk(self, journal):
        journal.create(_record())
        payload = json.loads((journal.directory / "job1.json").read_text())
        assert payload["job_id"] == "job1"
        assert payload["state"] == "queued"
