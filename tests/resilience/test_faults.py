"""The deterministic fault-injection harness itself."""

from __future__ import annotations

import time

import pytest

from repro.resilience import faults
from repro.resilience.faults import FaultInjected, FaultPlan


class TestSpecParsing:
    def test_single_clause(self):
        plan = FaultPlan.parse("fit.margins:raise:OSError:2")
        (clause,) = plan.clauses
        assert clause.site == "fit.margins"
        assert clause.action == "raise"
        assert clause.value == "OSError"
        assert clause.remaining == 2

    def test_defaults(self):
        (clause,) = FaultPlan.parse("x:delay").clauses
        assert clause.value == ""
        assert clause.remaining == 1

    def test_unlimited_count(self):
        (clause,) = FaultPlan.parse("x:delay:0.01:*").clauses
        assert clause.remaining is None

    def test_multiple_clauses_split_on_semicolons(self):
        plan = FaultPlan.parse("a:kill;b:raise:RuntimeError;c:truncate:0.25:3")
        assert [c.site for c in plan.clauses] == ["a", "b", "c"]

    @pytest.mark.parametrize(
        "spec",
        ["nocolon", "site:frobnicate", ":raise", "a:raise:X:1:extra", "a:raise:X:-1"],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)


class TestFiring:
    def test_raise_action_default_exception(self):
        plan = FaultPlan.parse("here:raise")
        with pytest.raises(FaultInjected, match="here"):
            plan.fire("here")

    def test_raise_action_named_exception(self):
        plan = FaultPlan.parse("here:raise:OSError")
        with pytest.raises(OSError):
            plan.fire("here")

    def test_count_limits_firings(self):
        plan = FaultPlan.parse("here:raise::2")
        for _ in range(2):
            with pytest.raises(FaultInjected):
                plan.fire("here")
        plan.fire("here")  # budget exhausted: no-op

    def test_other_sites_unaffected(self):
        FaultPlan.parse("here:raise").fire("elsewhere")

    def test_delay_sleeps(self):
        plan = FaultPlan.parse("here:delay:0.05")
        started = time.monotonic()
        plan.fire("here")
        assert time.monotonic() - started >= 0.04

    def test_truncate_cuts_payload(self):
        plan = FaultPlan.parse("write:truncate:0.5")
        assert plan.corrupt("write", b"x" * 100) == b"x" * 50
        # Budget of one: the second write goes through intact.
        assert plan.corrupt("write", b"x" * 100) == b"x" * 100

    def test_truncate_does_not_fire_via_inject(self):
        plan = FaultPlan.parse("write:truncate:0.0")
        plan.fire("write")  # truncate clauses only act through corrupt()
        assert plan.corrupt("write", b"abc") == b""


class TestLatchDirectory:
    def test_count_is_global_across_plans(self, tmp_path):
        # Two plans over the same latch dir model two processes that
        # both inherited the same spec: the clause fires once, total.
        spec = "here:raise::1"
        first = FaultPlan.parse(spec, latch_dir=str(tmp_path))
        second = FaultPlan.parse(spec, latch_dir=str(tmp_path))
        with pytest.raises(FaultInjected):
            first.fire("here")
        second.fire("here")  # latch already claimed: no-op
        assert len(list(tmp_path.iterdir())) == 1


class TestModuleLevelInjection:
    def test_inert_without_a_plan(self):
        faults.inject("anything")
        assert faults.corrupt_bytes("anything", b"abc") == b"abc"

    def test_env_var_arms_the_plan(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "site:raise")
        with pytest.raises(FaultInjected):
            faults.inject("site")

    def test_configure_overrides_env(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "env.site:raise")
        faults.configure("code.site:raise")
        faults.inject("env.site")  # env plan is shadowed
        with pytest.raises(FaultInjected):
            faults.inject("code.site")

    def test_configure_none_disarms(self):
        faults.configure("site:raise")
        faults.configure(None)
        faults.inject("site")

    def test_corrupt_bytes_routes_through_plan(self):
        faults.configure("w:truncate:0.5")
        assert faults.corrupt_bytes("w", b"abcd") == b"ab"
