"""Chaos tests: injected faults against the real fit/serve paths.

Each test arms a deterministic fault plan (``repro.resilience.faults``)
and asserts the system-level resilience property — bitwise-identical
retries, single ε charges across restarts, refunds only before noise,
backpressure with ``Retry-After`` — rather than any implementation
detail of the failure itself.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.parallel import ExecutionContext
from repro.resilience import faults
from repro.service import ServiceConfig, SynthesisService, build_server


def _square(task, shared):
    return task * task


def _service(root, **overrides) -> SynthesisService:
    return SynthesisService(
        ServiceConfig(data_dir=root, epsilon_cap=3.0, **overrides)
    )


def _submit(service, csv_text, seed=7, epsilon=0.5):
    if "ds" not in service.datasets:
        service.upload_dataset("ds", csv_text)
    return service.submit_fit(
        {"dataset_id": "ds", "epsilon": epsilon, "seed": seed}
    )


def _model_arrays(npz_path):
    with np.load(npz_path, allow_pickle=False) as archive:
        return {key: np.array(archive[key]) for key in archive.files}


def _ledger_lines(root):
    path = root / "ledger.jsonl"
    if not path.exists():
        return []
    return [json.loads(line) for line in path.read_text().splitlines() if line]


class TestWorkerKill:
    def test_sigkilled_pool_worker_is_retried_bitwise(self, tmp_path, monkeypatch):
        # The kill clause fires inside a pool worker (the parent never
        # executes chunks on the process backend); the latch directory
        # caps it at one SIGKILL fleet-wide, so the retried dispatch
        # — a fresh pool over the same deterministic tasks — succeeds.
        latch = tmp_path / "latch"
        latch.mkdir()
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "parallel.chunk:kill::1")
        monkeypatch.setenv(faults.FAULTS_LATCH_ENV_VAR, str(latch))
        context = ExecutionContext(backend="process", max_workers=2, chunk_size=2)
        result = context.map_tasks(_square, list(range(8)))
        assert result == [task * task for task in range(8)]
        assert len(list(latch.iterdir())) == 1  # the kill fired exactly once


class TestStageHang:
    def test_hung_stage_fails_at_the_deadline(self, tmp_path, service_csv):
        faults.configure("fit.correlation:delay:0.6:1")
        service = _service(tmp_path / "data", fit_timeout_seconds=0.25)
        try:
            submitted = _submit(service, service_csv)
            job = service.worker.wait(submitted["job_id"], timeout=30.0)
            assert job.status == "failed"
            assert "deadline" in (job.error or "").lower()
            # The hang hit *after* the margins drew their noise, so the
            # ε is genuinely spent and must stay charged.
            assert service.accountant.spent("ds") == pytest.approx(0.5)
        finally:
            service.close()


class TestRestartResume:
    def test_crash_mid_fit_resumes_bitwise_for_one_charge(
        self, tmp_path, service_csv
    ):
        # Control: the same seed fit with no interference.
        control = _service(tmp_path / "control")
        try:
            control_job = _submit(control, service_csv, seed=7)
            assert control.worker.wait(control_job["job_id"]).status == "done"
            control_model = _model_arrays(
                tmp_path / "control" / "models" / f"m-{control_job['job_id']}.npz"
            )
        finally:
            control.close()

        # Chaos: die after the margins stage checkpointed, then restart.
        faults.configure("fit.correlation:raise::1")
        service = _service(tmp_path / "data")
        try:
            submitted = _submit(service, service_csv, seed=7)
            job_id = submitted["job_id"]
            assert service.worker.wait(job_id).status == "failed"
            faults.configure(None)
            # A real crash leaves the record in flight rather than
            # cleanly failed; emulate that before the restart.
            service.journal.update(job_id, state="running")
        finally:
            service.close()

        revived = _service(tmp_path / "data")
        try:
            assert revived.worker.wait(job_id).status == "done"
            record = revived.journal.load(job_id)
            # Margins were computed by the first attempt only; resume
            # restored them from the checkpoint.
            assert record.stage_computed.get("margins") == 1
            # One charge total across both attempts.
            summary = revived.accountant.summary("ds")
            assert summary["epsilon_spent"] == pytest.approx(0.5)
            charges = [
                entry
                for entry in _ledger_lines(tmp_path / "data")
                if entry.get("key") == f"fit:{job_id}"
            ]
            assert len(charges) == 1
            # The resumed release is bitwise the uninterrupted release.
            resumed_model = _model_arrays(
                tmp_path / "data" / "models" / f"m-{job_id}.npz"
            )
            assert set(resumed_model) == set(control_model)
            for key, expected in control_model.items():
                assert np.array_equal(resumed_model[key], expected), key
        finally:
            revived.close()


class TestRefundWindow:
    def test_failure_before_noise_refunds_the_charge(self, tmp_path, service_csv):
        faults.configure("fit.margins:raise::1")
        service = _service(tmp_path / "data")
        try:
            submitted = _submit(service, service_csv)
            assert service.worker.wait(submitted["job_id"]).status == "failed"
            summary = service.accountant.summary("ds")
            assert summary["epsilon_spent"] == pytest.approx(0.0)
            assert summary["epsilon_remaining"] == pytest.approx(3.0)
            assert [c["kind"] for c in summary["charges"]] == ["charge", "refund"]
        finally:
            service.close()

    def test_failure_after_noise_never_refunds(self, tmp_path, service_csv):
        faults.configure("fit.correlation:raise::1")
        service = _service(tmp_path / "data")
        try:
            submitted = _submit(service, service_csv)
            assert service.worker.wait(submitted["job_id"]).status == "failed"
            summary = service.accountant.summary("ds")
            assert summary["epsilon_spent"] == pytest.approx(0.5)
            assert [c["kind"] for c in summary["charges"]] == ["charge"]
        finally:
            service.close()

    def test_orphaned_checkpoint_vetoes_the_refund(self, tmp_path, service_csv):
        """Double-spend regression: a stage checkpoint the journal never
        recorded (torn record write) must still block the refund.

        Attempt 1 checkpoints the margins, then dies at the correlation
        stage.  We erase the journal's stage bookkeeping — emulating a
        crash between persisting the NPZ and journaling it — and
        restart.  The resumed fit restores the margins from the
        checkpoint (so ``privacy_touched_`` stays False) and fails
        again pre-noise; every *record*-based refund guard passes, yet
        the noisy margins durably exist, so the ε must stay charged.
        """
        faults.configure("fit.correlation:raise::1")
        service = _service(tmp_path / "data")
        try:
            submitted = _submit(service, service_csv, seed=7)
            job_id = submitted["job_id"]
            assert service.worker.wait(job_id).status == "failed"
            assert service.journal.has_stage_checkpoints(job_id)
            # Emulate the torn journal write: checkpoint on disk, record
            # claiming no stage was ever computed, job still in flight.
            service.journal.update(
                job_id, state="running", stages_done=[], stage_computed={}
            )
        finally:
            service.close()

        faults.configure("fit.correlation:raise::1")
        revived = _service(tmp_path / "data")
        try:
            assert revived.worker.wait(job_id).status == "failed"
            summary = revived.accountant.summary("ds")
            assert summary["epsilon_spent"] == pytest.approx(0.5)
            assert [c["kind"] for c in summary["charges"]] == ["charge"]
        finally:
            revived.close()


class TestLedgerRetry:
    def test_transient_append_failure_charges_exactly_once(
        self, tmp_path, service_csv
    ):
        # The first append raises OSError; the accountant rolls the
        # in-memory spend back and the worker's retry policy re-issues
        # the charge, so the durable ledger ends up with one line.
        faults.configure("ledger.append:raise:OSError:1")
        service = _service(tmp_path / "data")
        try:
            submitted = _submit(service, service_csv)
            job_id = submitted["job_id"]
            assert service.worker.wait(job_id).status == "done"
            assert service.accountant.spent("ds") == pytest.approx(0.5)
            charges = [
                entry
                for entry in _ledger_lines(tmp_path / "data")
                if entry.get("key") == f"fit:{job_id}"
            ]
            assert len(charges) == 1
        finally:
            service.close()


class _RawClient:
    """urllib client that surfaces response headers (for Retry-After)."""

    def __init__(self, port):
        self.base = f"http://127.0.0.1:{port}"

    def post(self, path, body):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(body).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, dict(response.headers), json.loads(
                    response.read()
                )
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), json.loads(error.read())

    def get(self, path):
        with urllib.request.urlopen(self.base + path, timeout=30) as response:
            return response.status, json.loads(response.read())


@pytest.fixture
def http_chaos(tmp_path, service_csv):
    """Factory: a served SynthesisService with chosen config overrides."""
    state = {}

    def build(**overrides):
        service = _service(tmp_path / "data", **overrides)
        service.upload_dataset("ds", service_csv)
        server = build_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        state.update(service=service, server=server)
        return service, _RawClient(server.server_address[1])

    yield build
    if state:
        state["server"].shutdown()
        state["server"].server_close()
        state["service"].close()


class TestHttpBackpressure:
    def test_queue_full_returns_429_with_retry_after(self, http_chaos):
        # Hold the worker inside job 1's margins stage; with a queue
        # bound of 1, job 2 queues and job 3 must be refused.
        faults.configure("fit.margins:delay:0.6:1")
        service, client = http_chaos(max_queued_fits=1)
        body = {"dataset_id": "ds", "epsilon": 0.1, "seed": 1}
        status1, _, job1 = client.post("/fits", body)
        status2, _, job2 = client.post("/fits", body)
        status3, headers3, refusal = client.post("/fits", body)
        assert (status1, status2) == (202, 202)
        assert status3 == 429
        assert float(headers3["Retry-After"]) > 0
        assert "queue" in refusal["error"].lower()
        # The refused submission left no journal record behind.
        assert {job1["job_id"], job2["job_id"]} == {
            record.job_id for record in service.journal.list()
        }
        for job in (job1, job2):
            assert service.worker.wait(job["job_id"]).status == "done"

    def test_cancel_a_queued_job_over_http(self, http_chaos):
        faults.configure("fit.margins:delay:0.5:1")
        service, client = http_chaos()
        body = {"dataset_id": "ds", "epsilon": 0.1, "seed": 1}
        _, _, running = client.post("/fits", body)
        _, _, queued = client.post("/fits", body)
        status, _, cancelled = client.post(
            f"/fits/{queued['job_id']}/cancel", {}
        )
        assert status == 202
        assert service.worker.wait(queued["job_id"]).status == "cancelled"
        assert service.worker.wait(running["job_id"]).status == "done"
        # The cancelled job never charged the dataset.
        assert service.accountant.spent("ds") == pytest.approx(0.1)
        status, view = client.get(f"/fits/{queued['job_id']}")
        assert (status, view["status"]) == (200, "cancelled")


class TestDrainAndRecover:
    def test_fast_shutdown_leaves_queued_jobs_recoverable(
        self, tmp_path, service_csv
    ):
        faults.configure("fit.margins:delay:0.4:1")
        service = _service(tmp_path / "data")
        running = _submit(service, service_csv, seed=1, epsilon=0.1)
        queued = _submit(service, service_csv, seed=2, epsilon=0.1)
        # Fast shutdown: the running job finishes, the queued one is
        # skipped but stays journaled as queued.
        service.close(drain=False)
        faults.configure(None)
        revived = _service(tmp_path / "data")
        try:
            assert revived.worker.wait(queued["job_id"]).status == "done"
            assert f"m-{queued['job_id']}" in revived.registry
            assert revived.job_status(running["job_id"])["status"] == "done"
            assert revived.accountant.spent("ds") == pytest.approx(0.2)
        finally:
            revived.close()
