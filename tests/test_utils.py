"""Tests for repro.utils."""

import numpy as np
import pytest

from repro.utils import (
    as_generator,
    check_int_at_least,
    check_matrix_square,
    check_positive,
    check_probability,
    pairs_count,
)


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seeds_deterministically(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        assert (a == b).all()

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen


class TestCheckPositive:
    @pytest.mark.parametrize("value", [1.0, 0.001, 1e9])
    def test_accepts_positive(self, value):
        assert check_positive("v", value) == value

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_nonpositive_and_nonfinite(self, value):
        with pytest.raises(ValueError):
            check_positive("v", value)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1, float("nan")])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)


class TestCheckIntAtLeast:
    def test_accepts_integer(self):
        assert check_int_at_least("n", 5, 1) == 5

    def test_rejects_below_minimum(self):
        with pytest.raises(ValueError):
            check_int_at_least("n", 0, 1)

    def test_rejects_fractional(self):
        with pytest.raises(ValueError):
            check_int_at_least("n", 2.5, 1)


class TestCheckMatrixSquare:
    def test_accepts_square(self):
        out = check_matrix_square("m", [[1, 0], [0, 1]])
        assert out.shape == (2, 2)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            check_matrix_square("m", np.zeros((2, 3)))

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            check_matrix_square("m", np.zeros(4))


class TestPairsCount:
    @pytest.mark.parametrize("m,expected", [(1, 0), (2, 1), (4, 6), (8, 28)])
    def test_binomial(self, m, expected):
        assert pairs_count(m) == expected
