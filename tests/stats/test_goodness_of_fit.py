"""Tests for the Rosenblatt-based copula goodness-of-fit machinery."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.stats.goodness_of_fit import (
    cramer_von_mises_uniform,
    gaussian_copula_gof,
    rosenblatt_transform,
)


def _gaussian_copula_sample(correlation, n, seed):
    rng = np.random.default_rng(seed)
    latent = rng.multivariate_normal(
        np.zeros(correlation.shape[0]), correlation, size=n
    )
    return sps.norm.cdf(latent)


def _t_copula_sample(correlation, df, n, seed):
    rng = np.random.default_rng(seed)
    normals = rng.multivariate_normal(
        np.zeros(correlation.shape[0]), correlation, size=n
    )
    chi2 = rng.chisquare(df, size=n)
    t_samples = normals / np.sqrt(chi2 / df)[:, None]
    return sps.t.cdf(t_samples, df)


CORRELATION = np.array([[1.0, 0.7], [0.7, 1.0]])


class TestRosenblattTransform:
    def test_output_in_unit_cube(self):
        u = _gaussian_copula_sample(CORRELATION, 500, 0)
        e = rosenblatt_transform(u, CORRELATION)
        assert ((e >= 0) & (e <= 1)).all()

    def test_true_model_gives_uniform_independent_coordinates(self):
        u = _gaussian_copula_sample(CORRELATION, 8000, 1)
        e = rosenblatt_transform(u, CORRELATION)
        # Uniformity of each coordinate (KS test at generous alpha).
        for j in range(2):
            p = sps.kstest(e[:, j], "uniform").pvalue
            assert p > 0.01
        # Independence: correlation of transformed coordinates ~ 0.
        assert abs(np.corrcoef(e.T)[0, 1]) < 0.05

    def test_wrong_model_leaves_dependence(self):
        u = _gaussian_copula_sample(CORRELATION, 8000, 2)
        e = rosenblatt_transform(u, np.eye(2))
        assert abs(np.corrcoef(sps.norm.ppf(np.clip(e, 1e-9, 1 - 1e-9)).T)[0, 1]) > 0.4

    def test_first_coordinate_unchanged(self):
        u = _gaussian_copula_sample(CORRELATION, 100, 3)
        e = rosenblatt_transform(u, CORRELATION)
        assert np.allclose(e[:, 0], u[:, 0], atol=1e-9)

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ValueError):
            rosenblatt_transform(np.full((5, 3), 0.5), CORRELATION)


class TestCramerVonMises:
    def test_perfectly_uniform_grid_is_minimal(self):
        n = 100
        grid = (2 * np.arange(1, n + 1) - 1) / (2.0 * n)
        assert cramer_von_mises_uniform(grid) == pytest.approx(1 / (12 * n))

    def test_concentrated_sample_scores_high(self):
        assert cramer_von_mises_uniform(np.full(100, 0.5)) > 1.0 / 12

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            cramer_von_mises_uniform(np.array([]))


class TestGaussianCopulaGOF:
    def test_accepts_true_model(self):
        u = _gaussian_copula_sample(CORRELATION, 1500, 4)
        result = gaussian_copula_gof(u, CORRELATION, n_bootstrap=60, rng=5)
        assert not result.rejects(alpha=0.01)

    def test_rejects_wrong_correlation(self):
        u = _gaussian_copula_sample(CORRELATION, 1500, 6)
        result = gaussian_copula_gof(u, np.eye(2), n_bootstrap=60, rng=7)
        assert result.rejects(alpha=0.05)

    def test_rejects_heavy_tails(self):
        u = _t_copula_sample(CORRELATION, df=2.0, n=2000, seed=8)
        result = gaussian_copula_gof(u, CORRELATION, n_bootstrap=60, rng=9)
        assert result.rejects(alpha=0.05)

    def test_p_value_in_unit_interval(self):
        u = _gaussian_copula_sample(CORRELATION, 300, 10)
        result = gaussian_copula_gof(u, CORRELATION, n_bootstrap=30, rng=11)
        assert 0.0 < result.p_value <= 1.0
