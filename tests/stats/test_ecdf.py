"""Tests for empirical CDFs, pseudo-copula transform and HistogramCDF."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.ecdf import EmpiricalCDF, HistogramCDF, pseudo_copula_transform


class TestEmpiricalCDF:
    def test_equation_2_values(self):
        # F̂(x) = #{X_i <= x} / (n + 1)
        cdf = EmpiricalCDF([1.0, 2.0, 3.0])
        assert cdf(0.5) == pytest.approx(0.0)
        assert cdf(1.0) == pytest.approx(1.0 / 4.0)
        assert cdf(2.5) == pytest.approx(2.0 / 4.0)
        assert cdf(10.0) == pytest.approx(3.0 / 4.0)

    def test_values_strictly_below_one(self):
        cdf = EmpiricalCDF(np.arange(100))
        assert cdf(99).max() < 1.0

    def test_monotone(self, rng):
        sample = rng.standard_normal(200)
        cdf = EmpiricalCDF(sample)
        xs = np.linspace(-4, 4, 300)
        values = cdf(xs)
        assert (np.diff(values) >= 0).all()

    def test_inverse_returns_sample_values(self, rng):
        sample = rng.standard_normal(50)
        cdf = EmpiricalCDF(sample)
        out = cdf.inverse(np.linspace(0.01, 0.99, 20))
        assert np.isin(out, sample).all()

    def test_inverse_monotone(self, rng):
        cdf = EmpiricalCDF(rng.standard_normal(100))
        out = cdf.inverse(np.linspace(0.01, 0.99, 50))
        assert (np.diff(out) >= 0).all()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])


class TestPseudoCopulaTransform:
    def test_range_strictly_inside_unit_interval(self, rng):
        data = rng.standard_normal((100, 3))
        u = pseudo_copula_transform(data)
        assert (u > 0).all() and (u < 1).all()

    def test_rank_formula_without_ties(self):
        data = np.array([[3.0], [1.0], [2.0]])
        u = pseudo_copula_transform(data)
        assert u[:, 0] == pytest.approx([3 / 4, 1 / 4, 2 / 4])

    def test_ties_get_common_rank(self):
        data = np.array([[1.0], [1.0], [2.0]])
        u = pseudo_copula_transform(data)
        assert u[0, 0] == u[1, 0]

    def test_preserves_order(self, rng):
        data = rng.standard_normal((50, 1))
        u = pseudo_copula_transform(data)
        assert (np.argsort(data[:, 0]) == np.argsort(u[:, 0])).all()

    def test_1d_input_promoted(self):
        u = pseudo_copula_transform(np.array([1.0, 2.0, 3.0]))
        assert u.shape == (3, 1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            pseudo_copula_transform(np.empty((0, 2)))


class TestHistogramCDF:
    def test_pmf_normalized(self):
        cdf = HistogramCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.pmf.sum() == pytest.approx(1.0)

    def test_negative_counts_clipped(self):
        cdf = HistogramCDF([-5.0, 10.0])
        assert cdf.pmf[0] == 0.0
        assert cdf.pmf[1] == 1.0

    def test_all_negative_falls_back_to_uniform(self):
        cdf = HistogramCDF([-1.0, -2.0, -3.0])
        assert np.allclose(cdf.pmf, 1.0 / 3.0)

    def test_cdf_ends_at_one(self):
        cdf = HistogramCDF([3.0, 1.0, 2.0])
        assert cdf.cdf[-1] == 1.0

    def test_midpoint_correction(self):
        cdf = HistogramCDF([1.0, 1.0])
        # F(0) = pmf(0)/2, F(1) = pmf(0) + pmf(1)/2.
        assert cdf(0) == pytest.approx(0.25)
        assert cdf(1) == pytest.approx(0.75)

    def test_inverse_hits_every_positive_bin(self):
        cdf = HistogramCDF([1.0, 1.0, 1.0, 1.0])
        out = cdf.inverse(np.array([0.1, 0.3, 0.6, 0.9]))
        assert (out == np.array([0, 1, 2, 3])).all()

    def test_inverse_skips_zero_bins(self):
        cdf = HistogramCDF([1.0, 0.0, 1.0])
        out = cdf.inverse(np.linspace(0.01, 0.99, 100))
        assert 1 not in out

    def test_inverse_clips_out_of_range_uniforms(self):
        cdf = HistogramCDF([1.0, 1.0])
        assert cdf.inverse(np.array([-0.5]))[0] == 0
        assert cdf.inverse(np.array([1.5]))[0] == 1

    def test_roundtrip_through_midpoints(self):
        cdf = HistogramCDF([5.0, 3.0, 2.0])
        values = np.array([0, 1, 2])
        assert (cdf.inverse(cdf(values)) == values).all()

    def test_range_mass(self):
        cdf = HistogramCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.range_mass(1, 2) == pytest.approx(0.5)
        assert cdf.range_mass(0, 3) == pytest.approx(1.0)
        assert cdf.range_mass(3, 2) == 0.0

    def test_total_mass_tracks_input(self):
        cdf = HistogramCDF([10.0, -2.0, 5.0])
        assert cdf.total_mass == pytest.approx(15.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            HistogramCDF([])

    @given(
        st.lists(
            st.floats(min_value=-10, max_value=100, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_cdf_always_monotone_in_unit_interval(self, counts):
        cdf = HistogramCDF(counts)
        values = cdf.cdf
        assert (np.diff(values) >= -1e-12).all()
        assert 0.0 <= values[0] <= 1.0
        assert values[-1] == pytest.approx(1.0)

    @given(
        st.lists(
            st.floats(min_value=-10, max_value=100, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=100, deadline=None)
    def test_inverse_always_lands_in_domain(self, counts, seed):
        cdf = HistogramCDF(counts)
        u = np.random.default_rng(seed).uniform(0, 1, size=64)
        out = cdf.inverse(u)
        assert (out >= 0).all() and (out < cdf.domain_size).all()
