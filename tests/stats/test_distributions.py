"""Tests for the margin pmf families."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.distributions import gaussian_pmf, margin_pmf, uniform_pmf, zipf_pmf


class TestUniformPmf:
    def test_flat_and_normalized(self):
        pmf = uniform_pmf(10)
        assert np.allclose(pmf, 0.1)

    def test_single_bin(self):
        assert uniform_pmf(1)[0] == 1.0


class TestGaussianPmf:
    def test_normalized(self):
        assert gaussian_pmf(100).sum() == pytest.approx(1.0)

    def test_peaked_at_center(self):
        pmf = gaussian_pmf(101)
        assert pmf.argmax() == 50

    def test_symmetric(self):
        pmf = gaussian_pmf(100)
        assert np.allclose(pmf, pmf[::-1], atol=1e-12)

    def test_spread_controls_concentration(self):
        narrow = gaussian_pmf(100, spread=8.0)
        wide = gaussian_pmf(100, spread=2.0)
        assert narrow.max() > wide.max()

    def test_degenerate_domain(self):
        assert gaussian_pmf(1)[0] == 1.0


class TestZipfPmf:
    def test_normalized(self):
        assert zipf_pmf(1000).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        pmf = zipf_pmf(50)
        assert (np.diff(pmf) < 0).all()

    def test_exponent_controls_skew(self):
        mild = zipf_pmf(100, exponent=0.5)
        steep = zipf_pmf(100, exponent=2.0)
        assert steep[0] > mild[0]

    def test_power_law_ratio(self):
        pmf = zipf_pmf(100, exponent=1.0)
        assert pmf[0] / pmf[9] == pytest.approx(10.0)


class TestMarginPmf:
    @pytest.mark.parametrize("family", ["gaussian", "normal", "uniform", "zipf"])
    def test_family_names(self, family):
        pmf = margin_pmf(family, 64)
        assert pmf.size == 64
        assert pmf.sum() == pytest.approx(1.0)

    def test_explicit_pmf_normalized(self):
        pmf = margin_pmf([1.0, 3.0], 2)
        assert np.allclose(pmf, [0.25, 0.75])

    def test_rejects_unknown_family(self):
        with pytest.raises(ValueError):
            margin_pmf("cauchy", 10)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            margin_pmf([0.5, 0.5], 3)

    def test_rejects_negative_mass(self):
        with pytest.raises(ValueError):
            margin_pmf([0.5, -0.5, 1.0], 3)

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            margin_pmf([0.0, 0.0], 2)

    @given(
        st.sampled_from(["gaussian", "uniform", "zipf"]),
        st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=60, deadline=None)
    def test_always_a_valid_pmf(self, family, domain):
        pmf = margin_pmf(family, domain)
        assert pmf.size == domain
        assert (pmf >= 0).all()
        assert pmf.sum() == pytest.approx(1.0)
