"""Tests for the Gaussian-copula density (Eq. 1) and pairwise MLE."""

import numpy as np
import pytest

from repro.stats.copula_math import (
    bivariate_copula_loglikelihood,
    copula_mle_matrix,
    gaussian_copula_logdensity,
    pairwise_copula_mle,
)
from repro.stats.ecdf import pseudo_copula_transform


def _gaussian_copula_sample(correlation, n, seed):
    rng = np.random.default_rng(seed)
    latent = rng.multivariate_normal(
        np.zeros(correlation.shape[0]), correlation, size=n
    )
    from scipy import stats as sps

    return sps.norm.cdf(latent)


class TestLogdensity:
    def test_identity_correlation_gives_zero(self):
        """With P = I the density of Eq. (1) is identically 1."""
        u = np.array([[0.2, 0.8], [0.5, 0.5], [0.9, 0.1]])
        out = gaussian_copula_logdensity(u, np.eye(2))
        assert np.allclose(out, 0.0)

    def test_matches_bivariate_closed_form(self):
        rho = 0.6
        correlation = np.array([[1.0, rho], [rho, 1.0]])
        u = np.array([[0.3, 0.7], [0.25, 0.9]])
        from scipy import stats as sps

        z = sps.norm.ppf(u)
        expected = np.array(
            [
                -0.5 * np.log(1 - rho**2)
                - (rho**2 * (a**2 + b**2) - 2 * rho * a * b) / (2 * (1 - rho**2))
                for a, b in z
            ]
        )
        out = gaussian_copula_logdensity(u, correlation)
        assert np.allclose(out, expected)

    def test_dependent_data_scores_higher_under_true_model(self):
        correlation = np.array([[1.0, 0.8], [0.8, 1.0]])
        u = _gaussian_copula_sample(correlation, 2000, 0)
        ll_true = gaussian_copula_logdensity(u, correlation).sum()
        ll_independent = gaussian_copula_logdensity(u, np.eye(2)).sum()
        assert ll_true > ll_independent

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ValueError):
            gaussian_copula_logdensity(np.array([[0.5, 0.5, 0.5]]), np.eye(2))

    def test_rejects_indefinite_correlation(self):
        bad = np.array([[1.0, 2.0], [2.0, 1.0]])
        with pytest.raises(np.linalg.LinAlgError):
            gaussian_copula_logdensity(np.array([[0.5, 0.5]]), bad)


class TestBivariateLoglikelihood:
    def test_maximized_near_true_rho(self):
        correlation = np.array([[1.0, 0.5], [0.5, 1.0]])
        u = _gaussian_copula_sample(correlation, 4000, 1)
        from scipy import stats as sps

        z1, z2 = sps.norm.ppf(u[:, 0]), sps.norm.ppf(u[:, 1])
        grid = np.linspace(-0.95, 0.95, 39)
        values = [bivariate_copula_loglikelihood(r, z1, z2) for r in grid]
        assert grid[int(np.argmax(values))] == pytest.approx(0.5, abs=0.1)


class TestPairwiseMLE:
    @pytest.mark.parametrize("rho", [-0.7, 0.0, 0.4, 0.9])
    def test_recovers_true_correlation(self, rho):
        correlation = np.array([[1.0, rho], [rho, 1.0]])
        u = _gaussian_copula_sample(correlation, 6000, 2)
        estimate = pairwise_copula_mle(u[:, 0], u[:, 1])
        assert estimate == pytest.approx(rho, abs=0.05)

    def test_estimate_within_open_interval(self):
        u = _gaussian_copula_sample(np.array([[1.0, 0.99], [0.99, 1.0]]), 500, 3)
        estimate = pairwise_copula_mle(u[:, 0], u[:, 1])
        assert -1.0 < estimate < 1.0

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            pairwise_copula_mle(np.array([0.1, 0.2]), np.array([0.3]))


class TestMLEMatrix:
    def test_recovers_matrix(self):
        correlation = np.array(
            [[1.0, 0.6, 0.2], [0.6, 1.0, -0.3], [0.2, -0.3, 1.0]]
        )
        u = _gaussian_copula_sample(correlation, 5000, 4)
        estimate = copula_mle_matrix(u)
        assert np.abs(estimate - correlation).max() < 0.06

    def test_works_on_pseudo_copula_of_discrete_data(self, synthetic_4d):
        u = pseudo_copula_transform(synthetic_4d.values.astype(float))
        estimate = copula_mle_matrix(u)
        assert np.allclose(np.diag(estimate), 1.0)
        assert np.abs(estimate).max() <= 1.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            copula_mle_matrix(np.array([0.5, 0.5]))


class TestBivariateNormalCdf:
    def test_matches_scipy_reference(self):
        from scipy import stats as sps

        from repro.stats.copula_math import bivariate_normal_cdf

        grid = [-2.0, -0.5, 0.0, 0.7, 1.5]
        for rho in (-0.8, -0.3, 0.2, 0.6, 0.95):
            dist = sps.multivariate_normal(
                mean=[0.0, 0.0], cov=[[1.0, rho], [rho, 1.0]]
            )
            for h in grid:
                for k in grid:
                    assert bivariate_normal_cdf(h, k, rho) == pytest.approx(
                        float(dist.cdf([h, k])), abs=1e-6
                    )

    def test_independence_factorizes(self):
        from scipy import stats as sps

        from repro.stats.copula_math import bivariate_normal_cdf

        h, k = 0.4, -1.1
        assert bivariate_normal_cdf(h, k, 0.0) == pytest.approx(
            sps.norm.cdf(h) * sps.norm.cdf(k), abs=1e-12
        )

    def test_comonotone_and_antitone_limits(self):
        from scipy import stats as sps

        from repro.stats.copula_math import bivariate_normal_cdf

        h, k = 0.3, -0.2
        assert bivariate_normal_cdf(h, k, 1.0) == pytest.approx(
            min(sps.norm.cdf(h), sps.norm.cdf(k))
        )
        assert bivariate_normal_cdf(h, k, -1.0) == pytest.approx(
            max(sps.norm.cdf(h) + sps.norm.cdf(k) - 1.0, 0.0)
        )

    def test_symmetric_in_arguments(self):
        from repro.stats.copula_math import bivariate_normal_cdf

        assert bivariate_normal_cdf(0.7, -0.4, 0.5) == pytest.approx(
            bivariate_normal_cdf(-0.4, 0.7, 0.5), abs=1e-14
        )

    def test_broadcasts_and_is_bitwise_deterministic(self):
        from repro.stats.copula_math import bivariate_normal_cdf

        h = np.linspace(-2, 2, 5)
        k = np.linspace(-1, 1, 5)
        first = bivariate_normal_cdf(h, k, 0.42)
        second = bivariate_normal_cdf(h, k, 0.42)
        assert first.shape == (5,)
        np.testing.assert_array_equal(first, second)

    def test_rejects_rho_out_of_range(self):
        from repro.stats.copula_math import bivariate_normal_cdf

        with pytest.raises(ValueError):
            bivariate_normal_cdf(0.0, 0.0, 1.5)
