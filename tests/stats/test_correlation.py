"""Tests for the Greiner transform and normal-scores correlation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.correlation import (
    correlation_from_tau,
    normal_scores_correlation,
    tau_from_correlation,
)
from repro.stats.ecdf import pseudo_copula_transform


class TestGreinerTransform:
    def test_known_values(self):
        assert correlation_from_tau(0.0) == pytest.approx(0.0)
        assert correlation_from_tau(1.0) == pytest.approx(1.0)
        assert correlation_from_tau(-1.0) == pytest.approx(-1.0)
        assert correlation_from_tau(0.5) == pytest.approx(np.sin(np.pi / 4))

    def test_matrix_diagonal_forced_to_one(self):
        tau = np.array([[0.9, 0.5], [0.5, 0.9]])
        rho = correlation_from_tau(tau)
        assert np.allclose(np.diag(rho), 1.0)

    def test_out_of_range_tau_clipped(self):
        assert correlation_from_tau(1.5) == pytest.approx(1.0)
        assert correlation_from_tau(-1.5) == pytest.approx(-1.0)

    @given(st.floats(min_value=-1.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, tau):
        assert tau_from_correlation(correlation_from_tau(tau)) == pytest.approx(
            tau, abs=1e-7
        )

    @given(st.floats(min_value=-1.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_monotone_and_bounded(self, tau):
        rho = correlation_from_tau(tau)
        assert -1.0 <= rho <= 1.0
        # |rho| >= |tau| for the sine transform on [-1, 1].
        assert abs(rho) >= abs(tau) - 1e-12


class TestNormalScoresCorrelation:
    def test_recovers_gaussian_correlation(self):
        rng = np.random.default_rng(0)
        target = 0.65
        latent = rng.multivariate_normal(
            [0, 0], [[1, target], [target, 1]], size=8000
        )
        u = pseudo_copula_transform(latent)
        corr = normal_scores_correlation(u)
        assert corr[0, 1] == pytest.approx(target, abs=0.03)

    def test_diagonal_is_one(self):
        rng = np.random.default_rng(1)
        u = pseudo_copula_transform(rng.standard_normal((500, 3)))
        corr = normal_scores_correlation(u)
        assert np.allclose(np.diag(corr), 1.0)

    def test_invariant_to_monotone_margins(self):
        """Normal-scores correlation only sees ranks."""
        rng = np.random.default_rng(2)
        latent = rng.multivariate_normal([0, 0], [[1, 0.5], [0.5, 1]], size=4000)
        transformed = np.column_stack([np.exp(latent[:, 0]), latent[:, 1] ** 3])
        a = normal_scores_correlation(pseudo_copula_transform(latent))
        b = normal_scores_correlation(pseudo_copula_transform(transformed))
        assert a[0, 1] == pytest.approx(b[0, 1], abs=1e-10)

    def test_rejects_values_outside_unit_interval(self):
        with pytest.raises(ValueError):
            normal_scores_correlation(np.array([[0.5, 1.5], [0.2, 0.3]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            normal_scores_correlation(np.array([0.1, 0.2]))


class TestSpearman:
    def test_perfect_monotone(self):
        x = np.arange(20.0)
        from repro.stats.correlation import spearman_rho

        assert spearman_rho(x, x**3) == pytest.approx(1.0)
        assert spearman_rho(x, -x) == pytest.approx(-1.0)

    def test_matches_scipy(self):
        from scipy import stats as sps

        from repro.stats.correlation import spearman_rho

        rng = np.random.default_rng(0)
        x = rng.integers(0, 30, size=200).astype(float)  # heavy ties
        y = x + rng.integers(0, 30, size=200)
        expected = sps.spearmanr(x, y).statistic
        assert spearman_rho(x, y) == pytest.approx(expected, abs=1e-12)

    def test_independent_near_zero(self):
        from repro.stats.correlation import spearman_rho

        rng = np.random.default_rng(1)
        assert abs(
            spearman_rho(rng.standard_normal(3000), rng.standard_normal(3000))
        ) < 0.05

    def test_rejects_bad_shapes(self):
        from repro.stats.correlation import spearman_rho

        with pytest.raises(ValueError):
            spearman_rho(np.arange(3), np.arange(4))
        with pytest.raises(ValueError):
            spearman_rho(np.array([1.0]), np.array([1.0]))


class TestSpearmanConversion:
    def test_known_values(self):
        from repro.stats.correlation import correlation_from_spearman

        assert correlation_from_spearman(0.0) == pytest.approx(0.0)
        assert correlation_from_spearman(1.0) == pytest.approx(1.0)
        assert correlation_from_spearman(-1.0) == pytest.approx(-1.0)

    def test_recovers_gaussian_correlation(self):
        from repro.stats.correlation import correlation_from_spearman, spearman_rho

        rng = np.random.default_rng(2)
        target = 0.7
        latent = rng.multivariate_normal(
            [0, 0], [[1, target], [target, 1]], size=8000
        )
        rho_s = spearman_rho(latent[:, 0], latent[:, 1])
        assert correlation_from_spearman(rho_s) == pytest.approx(target, abs=0.03)
