"""Tests for Kendall's tau, including merge-vs-naive property equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.kendall import (
    kendall_tau,
    kendall_tau_matrix,
    kendall_tau_merge,
    kendall_tau_naive,
)


class TestKnownValues:
    def test_perfect_concordance(self):
        x = np.arange(10)
        assert kendall_tau_naive(x, x) == pytest.approx(1.0)
        assert kendall_tau_merge(x, x) == pytest.approx(1.0)

    def test_perfect_discordance(self):
        x = np.arange(10)
        assert kendall_tau_naive(x, -x) == pytest.approx(-1.0)
        assert kendall_tau_merge(x, -x) == pytest.approx(-1.0)

    def test_handcomputed_example(self):
        # pairs: (1,2)c,(1,3)c,(2,3)d -> (2-1)/3
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([1.0, 3.0, 2.0])
        assert kendall_tau_naive(x, y) == pytest.approx(1.0 / 3.0)
        assert kendall_tau_merge(x, y) == pytest.approx(1.0 / 3.0)

    def test_all_tied_is_zero(self):
        x = np.ones(6)
        y = np.arange(6.0)
        assert kendall_tau_naive(x, y) == pytest.approx(0.0)
        assert kendall_tau_merge(x, y) == pytest.approx(0.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(3000)
        y = rng.standard_normal(3000)
        assert abs(kendall_tau_merge(x, y)) < 0.05


class TestMergeMatchesNaive:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-20, max_value=20),
                st.integers(min_value=-20, max_value=20),
            ),
            min_size=2,
            max_size=60,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_equivalence_with_ties(self, pairs):
        """Knight's O(n log n) algorithm equals the O(n^2) definition,
        including on data with heavy ties in either or both coordinates."""
        x = np.array([p[0] for p in pairs], dtype=float)
        y = np.array([p[1] for p in pairs], dtype=float)
        assert kendall_tau_merge(x, y) == pytest.approx(
            kendall_tau_naive(x, y), abs=1e-12
        )

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_equivalence_on_continuous_data(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(200)
        y = 0.5 * x + rng.standard_normal(200)
        assert kendall_tau_merge(x, y) == pytest.approx(
            kendall_tau_naive(x, y), abs=1e-12
        )

    def test_matches_scipy_tau_a_semantics(self):
        """On tie-free data our tau-a equals scipy's tau-b."""
        from scipy import stats as sps

        rng = np.random.default_rng(3)
        x = rng.permutation(100).astype(float)
        y = rng.permutation(100).astype(float)
        expected = sps.kendalltau(x, y).statistic
        assert kendall_tau_merge(x, y) == pytest.approx(expected, abs=1e-12)


class TestValidation:
    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            kendall_tau_merge(np.arange(3), np.arange(4))

    def test_rejects_single_observation(self):
        with pytest.raises(ValueError):
            kendall_tau_naive(np.array([1.0]), np.array([1.0]))

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            kendall_tau(np.arange(3), np.arange(3), method="quantum")


class TestTauMatrix:
    def test_diagonal_is_one(self, synthetic_4d):
        matrix = kendall_tau_matrix(synthetic_4d.values[:300])
        assert np.allclose(np.diag(matrix), 1.0)

    def test_symmetric(self, synthetic_4d):
        matrix = kendall_tau_matrix(synthetic_4d.values[:300])
        assert np.allclose(matrix, matrix.T)

    def test_methods_agree(self, synthetic_4d):
        sample = synthetic_4d.values[:150]
        merge = kendall_tau_matrix(sample, method="merge")
        naive = kendall_tau_matrix(sample, method="naive")
        assert np.allclose(merge, naive)

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            kendall_tau_matrix(np.arange(10))
