"""Tests for positive-definiteness repair (Algorithm 5 step 3 + Higham)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.psd_repair import (
    higham_nearest_correlation,
    is_positive_definite,
    make_positive_definite,
)


def _noisy_correlation(m: int, noise: float, seed: int) -> np.ndarray:
    """A correlation-like symmetric matrix with unit diagonal, possibly
    indefinite after heavy off-diagonal noise (the Algorithm 5 scenario)."""
    rng = np.random.default_rng(seed)
    base = np.eye(m)
    upper = np.triu_indices(m, 1)
    base[upper] = np.clip(rng.laplace(0, noise, size=len(upper[0])), -1, 1)
    base.T[upper] = base[upper]
    return base


class TestIsPositiveDefinite:
    def test_identity(self):
        assert is_positive_definite(np.eye(3))

    def test_indefinite(self):
        matrix = np.array([[1.0, 2.0], [2.0, 1.0]])
        assert not is_positive_definite(matrix)

    def test_semidefinite_fails_strict_check(self):
        matrix = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert not is_positive_definite(matrix)


class TestEigenvalueRepair:
    def test_already_pd_roundtrips(self):
        matrix = np.array([[1.0, 0.5], [0.5, 1.0]])
        out = make_positive_definite(matrix)
        assert np.allclose(out, matrix, atol=1e-10)

    def test_repairs_indefinite(self):
        matrix = np.array([[1.0, 0.95, -0.95], [0.95, 1.0, 0.95], [-0.95, 0.95, 1.0]])
        assert not is_positive_definite(matrix)
        out = make_positive_definite(matrix)
        assert is_positive_definite(out)

    def test_output_is_correlation_matrix(self):
        matrix = _noisy_correlation(5, 0.9, 0)
        out = make_positive_definite(matrix)
        assert np.allclose(np.diag(out), 1.0)
        assert np.allclose(out, out.T)
        assert np.abs(out).max() <= 1.0 + 1e-9

    def test_absolute_value_variant(self):
        matrix = np.array([[1.0, 0.95, -0.95], [0.95, 1.0, 0.95], [-0.95, 0.95, 1.0]])
        out = make_positive_definite(matrix, use_absolute=True)
        assert is_positive_definite(out)

    @given(
        st.integers(min_value=2, max_value=8),
        st.floats(min_value=0.1, max_value=2.0),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=100, deadline=None)
    def test_repair_always_yields_pd_correlation(self, m, noise, seed):
        matrix = _noisy_correlation(m, noise, seed)
        out = make_positive_definite(matrix)
        assert is_positive_definite(out)
        assert np.allclose(np.diag(out), 1.0)
        assert np.allclose(out, out.T)


class TestHighamRepair:
    def test_repairs_indefinite(self):
        matrix = _noisy_correlation(6, 1.0, 1)
        out = higham_nearest_correlation(matrix)
        assert is_positive_definite(out)
        assert np.allclose(np.diag(out), 1.0)

    def test_already_pd_stays_close(self):
        matrix = np.array([[1.0, 0.3], [0.3, 1.0]])
        out = higham_nearest_correlation(matrix)
        assert np.allclose(out, matrix, atol=1e-6)

    def test_closer_than_eigenvalue_repair_in_frobenius(self):
        """Higham solves the nearest-correlation problem; the one-shot
        eigenvalue repair does not, so Higham should never be (much)
        farther from the input."""
        matrix = _noisy_correlation(6, 0.8, 2)
        eig = make_positive_definite(matrix)
        hig = higham_nearest_correlation(matrix)
        d_eig = np.linalg.norm(eig - matrix)
        d_hig = np.linalg.norm(hig - matrix)
        assert d_hig <= d_eig + 1e-6

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            higham_nearest_correlation(np.zeros((2, 3)))
