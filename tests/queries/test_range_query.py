"""Tests for range-count queries and workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import Dataset, Schema
from repro.queries.range_query import (
    RangeQuery,
    random_workload,
    workload_with_volume,
)


class TestRangeQuery:
    def test_matches_and_count(self, small_dataset):
        query = RangeQuery(((0, 24), (0, 39)))
        expected = int((small_dataset.column(0) <= 24).sum())
        assert query.count(small_dataset) == expected

    def test_full_domain_counts_everything(self, small_dataset):
        query = RangeQuery(((0, 49), (0, 39)))
        assert query.count(small_dataset) == small_dataset.n_records

    def test_volume(self):
        query = RangeQuery(((0, 9), (5, 9)))
        assert query.volume() == 50.0

    def test_selectivity(self, schema_2d):
        query = RangeQuery(((0, 24), (0, 19)))
        assert query.selectivity(schema_2d) == pytest.approx(0.25)

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            RangeQuery(((5, 3),))

    def test_rejects_dimension_mismatch(self, small_dataset):
        query = RangeQuery(((0, 10),))
        with pytest.raises(ValueError):
            query.count(small_dataset)


class TestRandomWorkload:
    def test_size_and_dimensions(self, schema_2d):
        workload = random_workload(schema_2d, 25, rng=0)
        assert len(workload) == 25
        assert all(q.dimensions == 2 for q in workload)

    def test_ranges_within_domains(self, schema_2d):
        workload = random_workload(schema_2d, 200, rng=1)
        for query in workload:
            for (low, high), attribute in zip(query.ranges, schema_2d):
                assert 0 <= low <= high < attribute.domain_size

    def test_deterministic_given_seed(self, schema_2d):
        a = random_workload(schema_2d, 10, rng=2)
        b = random_workload(schema_2d, 10, rng=2)
        assert a == b

    def test_rejects_zero_queries(self, schema_2d):
        with pytest.raises(ValueError):
            random_workload(schema_2d, 0)


class TestWorkloadWithVolume:
    @given(st.floats(min_value=1.0, max_value=2000.0), st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_volumes_close_to_target(self, target, seed):
        schema = Schema.from_domain_sizes([50, 40])
        workload = workload_with_volume(schema, target, 5, rng=seed)
        for query in workload:
            assert query.volume() == pytest.approx(target, rel=0.6)

    def test_ranges_within_domains(self, schema_2d):
        workload = workload_with_volume(schema_2d, 100.0, 50, rng=3)
        for query in workload:
            for (low, high), attribute in zip(query.ranges, schema_2d):
                assert 0 <= low <= high < attribute.domain_size

    def test_volume_one_gives_cell_queries(self, schema_2d):
        workload = workload_with_volume(schema_2d, 1.0, 20, rng=4)
        assert all(query.volume() == 1.0 for query in workload)

    def test_target_capped_at_domain_space(self, schema_2d):
        workload = workload_with_volume(schema_2d, 1e12, 5, rng=5)
        for query in workload:
            assert query.volume() <= schema_2d.domain_space()

    def test_rejects_sub_one_volume(self, schema_2d):
        with pytest.raises(ValueError):
            workload_with_volume(schema_2d, 0.5, 5)


class TestAnchoredWorkload:
    def test_every_query_nonempty(self, small_dataset):
        from repro.queries.range_query import anchored_workload

        workload = anchored_workload(small_dataset, 100, rng=0)
        assert all(query.count(small_dataset) >= 1 for query in workload)

    def test_ranges_within_domains(self, small_dataset):
        from repro.queries.range_query import anchored_workload

        workload = anchored_workload(small_dataset, 100, rng=1)
        for query in workload:
            for (low, high), attribute in zip(query.ranges, small_dataset.schema):
                assert 0 <= low <= high < attribute.domain_size

    def test_nonempty_even_on_skewed_high_dimensional_data(self):
        from repro.data.synthetic import SyntheticSpec, gaussian_dependence_data
        from repro.queries.range_query import anchored_workload

        spec = SyntheticSpec(
            n_records=500, domain_sizes=(200,) * 6, margins="zipf"
        )
        data = gaussian_dependence_data(spec, rng=2)
        workload = anchored_workload(data, 50, rng=3)
        assert all(query.count(data) >= 1 for query in workload)

    def test_rejects_empty_dataset(self, schema_2d):
        import numpy as np

        from repro.data.dataset import Dataset
        from repro.queries.range_query import anchored_workload

        empty = Dataset(np.empty((0, 2), dtype=np.int64), schema_2d)
        with pytest.raises(ValueError):
            anchored_workload(empty, 5)
