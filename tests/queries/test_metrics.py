"""Tests for the distributional utility metrics."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.synthetic import SyntheticSpec, gaussian_dependence_data
from repro.queries.metrics import (
    all_margin_tvds,
    margin_kolmogorov,
    margin_tvd,
    pairwise_tau_error,
    two_way_tvd,
    utility_report,
)


def _shuffle_column(dataset: Dataset, column: int, seed: int) -> Dataset:
    values = dataset.values.copy()
    rng = np.random.default_rng(seed)
    values[:, column] = rng.permutation(values[:, column])
    return Dataset(values, dataset.schema)


class TestMarginMetrics:
    def test_identical_is_zero(self, small_dataset):
        assert margin_tvd(small_dataset, small_dataset, 0) == 0.0
        assert margin_kolmogorov(small_dataset, small_dataset, 0) == 0.0

    def _zipf_clone(self, dataset, seed):
        """A same-schema dataset with very different (zipf) margins."""
        spec = SyntheticSpec(
            n_records=200, domain_sizes=(50, 40), margins="zipf"
        )
        generated = gaussian_dependence_data(spec, rng=seed)
        return Dataset(generated.values, dataset.schema)

    def test_tvd_bounded_by_one(self, small_dataset):
        other = self._zipf_clone(small_dataset, seed=0)
        tvd = margin_tvd(small_dataset, other, 0)
        assert 0.0 < tvd <= 1.0

    def test_kolmogorov_bounded_by_tvd(self, small_dataset):
        other = self._zipf_clone(small_dataset, seed=1)
        # KS (sup of CDF differences) <= TVD always.
        assert margin_kolmogorov(small_dataset, other, 0) <= margin_tvd(
            small_dataset, other, 0
        ) + 1e-12

    def test_all_margin_tvds_length(self, synthetic_4d):
        tvds = all_margin_tvds(synthetic_4d, synthetic_4d)
        assert tvds == [0.0, 0.0, 0.0, 0.0]

    def test_rejects_schema_mismatch(self, small_dataset, synthetic_4d):
        with pytest.raises(ValueError):
            margin_tvd(small_dataset, synthetic_4d, 0)


class TestMarginEdgeCases:
    def test_zero_count_values_contribute_nothing(self):
        # Both datasets leave value 3 empty: TVD must ignore the shared
        # zero-count cell rather than producing NaN from 0/0 anywhere.
        from repro.data.dataset import Schema

        schema = Schema.from_domain_sizes([4])
        left = Dataset(np.array([[0], [0], [1]]), schema)
        right = Dataset(np.array([[0], [1], [1]]), schema)
        tvd = margin_tvd(left, right, 0)
        assert tvd == pytest.approx(1.0 / 3.0)
        assert np.isfinite(tvd)

    def test_fully_concentrated_vs_uniform(self):
        from repro.data.dataset import Schema

        schema = Schema.from_domain_sizes([4])
        point = Dataset(np.zeros((8, 1), dtype=int), schema)
        uniform = Dataset(np.arange(8).reshape(-1, 1) % 4, schema)
        # TVD between a point mass and uniform over 4 values: 3/4.
        assert margin_tvd(point, uniform, 0) == pytest.approx(0.75)


class TestDependenceMetrics:
    def test_shuffling_breaks_dependence(self, synthetic_4d):
        shuffled = _shuffle_column(synthetic_4d, 0, seed=0)
        error = pairwise_tau_error(synthetic_4d, shuffled, rng=1)
        assert error > 0.2
        # Margins unchanged by the shuffle.
        assert margin_tvd(synthetic_4d, shuffled, 0) == 0.0

    def test_two_way_tvd_detects_shuffle(self, synthetic_4d):
        shuffled = _shuffle_column(synthetic_4d, 0, seed=2)
        assert two_way_tvd(synthetic_4d, shuffled, 0, 1) > 0.05

    def test_two_way_tvd_zero_on_identical(self, synthetic_4d):
        assert two_way_tvd(synthetic_4d, synthetic_4d, 0, 1) == 0.0

    def test_two_way_bins_validation(self, synthetic_4d):
        with pytest.raises(ValueError):
            two_way_tvd(synthetic_4d, synthetic_4d, 0, 1, bins=1)


class TestUtilityReport:
    def test_identical_report_is_all_zero(self, synthetic_4d):
        report = utility_report(synthetic_4d, synthetic_4d)
        assert report.worst_margin_tvd == 0.0
        assert report.max_tau_error == pytest.approx(0.0, abs=1e-12)
        assert report.worst_two_way_tvd == 0.0

    def test_pair_count(self, synthetic_4d):
        report = utility_report(synthetic_4d, synthetic_4d)
        assert len(report.two_way_tvds) == 6  # C(4,2)

    def test_str(self, synthetic_4d):
        report = utility_report(synthetic_4d, synthetic_4d)
        assert "UtilityReport" in str(report)

    def test_dpcopula_release_scores_reasonably(self, synthetic_4d):
        from repro.core.dpcopula import DPCopulaKendall

        synthetic = DPCopulaKendall(epsilon=5.0, rng=0).fit_sample(synthetic_4d)
        report = utility_report(synthetic_4d, synthetic)
        assert report.worst_margin_tvd < 0.3
        assert report.max_tau_error < 0.4
