"""Tests for the k-way marginal workload."""

import itertools

import numpy as np
import pytest

from repro.data.dataset import Dataset, Schema
from repro.histograms.base import DenseNoisyHistogram
from repro.queries.workloads import (
    KWayMarginal,
    all_kway,
    coarse_edges,
    evaluate_marginals,
    gaussian_copula_pair_probabilities,
    kway_marginal,
    marginal_probabilities,
)


class TestCoarseEdges:
    def test_small_domain_is_exact(self):
        assert coarse_edges(5, 8) == (0, 1, 2, 3, 4, 5)

    def test_large_domain_capped_at_bins(self):
        edges = coarse_edges(1000, 8)
        assert len(edges) == 9
        assert edges[0] == 0 and edges[-1] == 1000

    def test_edges_strictly_ascending(self):
        for domain in (1, 2, 7, 8, 9, 100, 999):
            edges = coarse_edges(domain, 8)
            assert all(b > a for a, b in zip(edges, edges[1:]))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            coarse_edges(0, 8)
        with pytest.raises(ValueError):
            coarse_edges(10, 0)


class TestKWayMarginal:
    def test_validation(self):
        with pytest.raises(ValueError):
            KWayMarginal(attributes=(), edges=())
        with pytest.raises(ValueError):
            KWayMarginal(attributes=(0, 0), edges=((0, 1), (0, 1)))
        with pytest.raises(ValueError):
            KWayMarginal(attributes=(0,), edges=((0, 1), (0, 1)))
        with pytest.raises(ValueError):
            KWayMarginal(attributes=(0,), edges=((1, 0),))

    def test_shape_and_cells(self):
        marginal = KWayMarginal(attributes=(0, 2), edges=((0, 5, 10), (0, 1, 2, 3)))
        assert marginal.k == 2
        assert marginal.shape == (2, 3)
        assert marginal.n_cells == 6

    def test_cell_queries_partition_the_domain(self):
        schema = Schema.from_domain_sizes([10, 4, 3])
        marginal = kway_marginal(schema, [0, 2], bins=2)
        queries = marginal.cell_queries(schema)
        assert len(queries) == marginal.n_cells
        # Every domain point matches exactly one cell query.
        rng = np.random.default_rng(0)
        data = Dataset(rng.integers(0, [10, 4, 3], size=(50, 3)), schema)
        total = sum(query.count(data) for query in queries)
        assert total == data.n_records

    def test_kway_marginal_rejects_bad_attribute(self):
        schema = Schema.from_domain_sizes([10, 4])
        with pytest.raises(ValueError):
            kway_marginal(schema, [2])


class TestAllKway:
    def test_counts_match_combinations(self):
        schema = Schema.from_domain_sizes([10] * 5)
        for k in (1, 2, 3):
            marginals = all_kway(schema, k)
            assert len(marginals) == len(
                list(itertools.combinations(range(5), k))
            )
            assert all(m.k == k for m in marginals)

    def test_rejects_k_above_dimensions(self):
        schema = Schema.from_domain_sizes([10, 10])
        with pytest.raises(ValueError):
            all_kway(schema, 3)

    def test_subsample_is_deterministic_and_ordered(self):
        schema = Schema.from_domain_sizes([10] * 8)
        first = all_kway(schema, 3, max_marginals=5, rng=42)
        second = all_kway(schema, 3, max_marginals=5, rng=42)
        assert [m.attributes for m in first] == [m.attributes for m in second]
        assert len(first) == 5
        # Stable combination order within the subsample.
        assert [m.attributes for m in first] == sorted(
            m.attributes for m in first
        )


class TestEvaluateMarginals:
    def test_self_evaluation_is_zero(self, small_dataset):
        marginals = all_kway(small_dataset.schema, 2, bins=6)
        evaluation = evaluate_marginals(small_dataset, marginals, small_dataset)
        assert evaluation.avg_tvd == 0.0
        assert evaluation.max_tvd == 0.0
        assert evaluation.avg_l1 == 0.0

    def test_dataset_and_answerer_paths_agree(self, small_dataset):
        counts = np.zeros((50, 40))
        np.add.at(
            counts, (small_dataset.column(0), small_dataset.column(1)), 1.0
        )
        histogram = DenseNoisyHistogram(counts)
        marginals = all_kway(small_dataset.schema, 2, bins=8)
        from_records = evaluate_marginals(small_dataset, marginals, small_dataset)
        from_structure = evaluate_marginals(histogram, marginals, small_dataset)
        for key in from_records.tvds:
            assert from_structure.tvds[key] == pytest.approx(
                from_records.tvds[key], abs=1e-12
            )

    def test_disjoint_support_scores_one(self):
        schema = Schema.from_domain_sizes([4])
        left = Dataset(np.zeros((10, 1), dtype=int), schema)
        right = Dataset(np.full((10, 1), 3), schema)
        marginals = all_kway(schema, 1, bins=4)
        evaluation = evaluate_marginals(left, marginals, right)
        assert evaluation.max_tvd == pytest.approx(1.0)

    def test_empty_workload_rejected(self, small_dataset):
        with pytest.raises(ValueError, match="empty marginal workload"):
            evaluate_marginals(small_dataset, [], small_dataset)

    def test_empty_dataset_rejected(self, small_dataset):
        empty = Dataset(
            np.empty((0, 2), dtype=int), small_dataset.schema
        )
        marginals = all_kway(small_dataset.schema, 1)
        with pytest.raises(ValueError, match="empty dataset"):
            evaluate_marginals(small_dataset, marginals, empty)

    def test_to_dict_round_trips_json(self, small_dataset):
        import json

        marginals = all_kway(small_dataset.schema, 2, bins=4)
        evaluation = evaluate_marginals(small_dataset, marginals, small_dataset)
        document = json.loads(json.dumps(evaluation.to_dict()))
        assert document["n_marginals"] == 1
        assert "0,1" in document["per_marginal"]


class TestGaussianCopulaPairProbabilities:
    def test_cells_form_a_distribution(self):
        margin_i = np.array([5.0, 10.0, 20.0, 5.0])
        margin_j = np.array([1.0, 2.0, 3.0])
        cells = gaussian_copula_pair_probabilities(
            margin_i, margin_j, 0.6, [0, 1, 2, 3, 4], [0, 1, 2, 3]
        )
        assert cells.shape == (4, 3)
        assert (cells >= 0.0).all()
        assert cells.sum() == pytest.approx(1.0)

    def test_independence_gives_product_of_margins(self):
        margin_i = np.array([3.0, 7.0])
        margin_j = np.array([2.0, 2.0, 6.0])
        cells = gaussian_copula_pair_probabilities(
            margin_i, margin_j, 0.0, [0, 1, 2], [0, 1, 2, 3]
        )
        expected = np.outer(margin_i / 10.0, margin_j / 10.0)
        np.testing.assert_allclose(cells, expected, atol=1e-12)

    def test_margins_are_preserved_at_any_rho(self):
        margin_i = np.array([1.0, 4.0, 2.0, 3.0])
        margin_j = np.array([6.0, 1.0, 3.0])
        for rho in (-0.9, -0.3, 0.5, 0.95):
            cells = gaussian_copula_pair_probabilities(
                margin_i, margin_j, rho, [0, 1, 2, 3, 4], [0, 1, 2, 3]
            )
            np.testing.assert_allclose(
                cells.sum(axis=1), margin_i / margin_i.sum(), atol=1e-9
            )
            np.testing.assert_allclose(
                cells.sum(axis=0), margin_j / margin_j.sum(), atol=1e-9
            )

    def test_comonotone_concentrates_mass(self):
        margin = np.array([1.0, 1.0, 1.0, 1.0])
        cells = gaussian_copula_pair_probabilities(
            margin, margin, 1.0, [0, 1, 2, 3, 4], [0, 1, 2, 3, 4]
        )
        np.testing.assert_allclose(cells, 0.25 * np.eye(4), atol=1e-12)

    def test_negative_margin_counts_are_clipped(self):
        cells = gaussian_copula_pair_probabilities(
            np.array([-2.0, 5.0, 5.0]),
            np.array([1.0, 1.0]),
            0.3,
            [0, 1, 2, 3],
            [0, 1, 2],
        )
        assert cells[0].sum() == pytest.approx(0.0, abs=1e-12)
        assert cells.sum() == pytest.approx(1.0)
