"""Tests for the error metrics and workload evaluator."""

import numpy as np
import pytest

from repro.histograms.base import DenseNoisyHistogram
from repro.queries.evaluation import (
    absolute_error,
    dataset_answerer,
    evaluate_workload,
    relative_error,
    true_answers,
)
from repro.queries.range_query import RangeQuery, random_workload


class TestRelativeError:
    def test_basic(self):
        assert relative_error(110, 100) == pytest.approx(0.1)

    def test_sanity_bound_kicks_in_for_small_answers(self):
        # actual = 0 would divide by zero without the bound.
        assert relative_error(5, 0, sanity_bound=1.0) == 5.0

    def test_sanity_bound_only_lifts_denominator(self):
        assert relative_error(110, 100, sanity_bound=50) == pytest.approx(0.1)
        assert relative_error(20, 10, sanity_bound=50) == pytest.approx(0.2)

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            relative_error(1, 1, sanity_bound=0.0)


def test_absolute_error():
    assert absolute_error(7.5, 10.0) == 2.5


class TestTrueAnswers:
    def test_vector_of_counts(self, small_dataset):
        workload = random_workload(small_dataset.schema, 10, rng=0)
        answers = true_answers(small_dataset, workload)
        assert answers.shape == (10,)
        assert (answers >= 0).all()
        assert (answers <= small_dataset.n_records).all()


class TestEvaluateWorkload:
    def test_perfect_source_has_zero_error(self, small_dataset):
        workload = random_workload(small_dataset.schema, 20, rng=1)
        evaluation = evaluate_workload(small_dataset, workload, small_dataset)
        assert evaluation.mean_relative_error == 0.0
        assert evaluation.mean_absolute_error == 0.0
        assert evaluation.n_queries == 20

    def test_accepts_precomputed_answers(self, small_dataset):
        workload = random_workload(small_dataset.schema, 5, rng=2)
        actual = true_answers(small_dataset, workload)
        evaluation = evaluate_workload(small_dataset, workload, actual)
        assert evaluation.mean_relative_error == 0.0

    def test_histogram_answerer(self, small_dataset):
        counts = np.zeros((50, 40))
        np.add.at(
            counts, (small_dataset.column(0), small_dataset.column(1)), 1.0
        )
        histogram = DenseNoisyHistogram(counts)
        workload = random_workload(small_dataset.schema, 15, rng=3)
        evaluation = evaluate_workload(histogram, workload, small_dataset)
        assert evaluation.mean_relative_error == 0.0

    def test_callable_answerer(self, small_dataset):
        workload = random_workload(small_dataset.schema, 5, rng=4)
        evaluation = evaluate_workload(
            lambda q: 0.0, workload, small_dataset, sanity_bound=1.0
        )
        # All answers zero: relative error equals actual/max(actual, 1).
        assert evaluation.mean_relative_error <= 1.0

    def test_dataset_answerer_helper(self, small_dataset):
        answer = dataset_answerer(small_dataset)
        query = RangeQuery(((0, 49), (0, 39)))
        assert answer(query) == small_dataset.n_records

    def test_biased_source_measured(self, small_dataset):
        workload = random_workload(small_dataset.schema, 10, rng=5)
        actual = true_answers(small_dataset, workload)
        evaluation = evaluate_workload(
            lambda q: float(q.count(small_dataset)) + 10.0,
            workload,
            actual,
        )
        assert evaluation.mean_absolute_error == pytest.approx(10.0)

    def test_rejects_answer_count_mismatch(self, small_dataset):
        workload = random_workload(small_dataset.schema, 5, rng=6)
        with pytest.raises(ValueError):
            evaluate_workload(small_dataset, workload, np.zeros(3))

    def test_rejects_unanswerable_source(self, small_dataset):
        workload = random_workload(small_dataset.schema, 2, rng=7)
        with pytest.raises(TypeError):
            evaluate_workload(42, workload, small_dataset)

    def test_empty_workload_rejected(self, small_dataset):
        with pytest.raises(ValueError, match="empty workload"):
            evaluate_workload(small_dataset, [], small_dataset)

    def test_sanity_bound_boundary_is_exact(self):
        # actual == sanity_bound: the denominator is exactly that value,
        # from either side of the max().
        assert relative_error(6.0, 5.0, sanity_bound=5.0) == pytest.approx(0.2)
        assert relative_error(6.0, 5.0 + 1e-9, sanity_bound=5.0) == (
            pytest.approx(abs(6.0 - (5.0 + 1e-9)) / (5.0 + 1e-9))
        )

    def test_str_representation(self, small_dataset):
        workload = random_workload(small_dataset.schema, 3, rng=8)
        evaluation = evaluate_workload(small_dataset, workload, small_dataset)
        text = str(evaluation)
        assert "RE mean" in text and "3 queries" in text
