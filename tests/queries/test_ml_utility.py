"""Tests for the train-on-synthetic / test-on-real ML harness."""

import numpy as np
import pytest

from repro.data.dataset import Dataset, Schema
from repro.queries.ml_utility import ml_utility, train_test_split


def _labelled_dataset(n=600, seed=0, noise=0.1):
    """A dataset whose target is predictable from the features."""
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 20, n)
    y = rng.integers(0, 10, n)
    label = ((x >= 10).astype(int) ^ (rng.random(n) < noise)).astype(int)
    schema = Schema.from_domain_sizes([20, 10, 2]).with_target("A2")
    return Dataset(np.column_stack([x, y, label]), schema)


class TestTrainTestSplit:
    def test_sizes_and_determinism(self):
        data = _labelled_dataset()
        train_a, test_a = train_test_split(data, 0.25, rng=3)
        train_b, test_b = train_test_split(data, 0.25, rng=3)
        assert train_a.n_records == 450 and test_a.n_records == 150
        np.testing.assert_array_equal(train_a.values, train_b.values)
        np.testing.assert_array_equal(test_a.values, test_b.values)

    def test_partition_is_exact(self):
        data = _labelled_dataset(n=100)
        train, test = train_test_split(data, 0.3, rng=0)
        combined = np.vstack([train.values, test.values])
        assert sorted(map(tuple, combined)) == sorted(map(tuple, data.values))

    def test_schema_target_survives(self):
        data = _labelled_dataset()
        train, test = train_test_split(data, 0.25, rng=0)
        assert train.schema.target == "A2"
        assert test.schema.target == "A2"

    def test_rejects_degenerate_fractions(self):
        data = _labelled_dataset(n=10)
        with pytest.raises(ValueError):
            train_test_split(data, 0.0)
        with pytest.raises(ValueError):
            train_test_split(data, 1.0)


class TestMLUtility:
    def test_bitwise_deterministic(self):
        data = _labelled_dataset()
        train, test = train_test_split(data, 0.25, rng=1)
        synthetic, _ = train_test_split(data, 0.5, rng=9)
        first = ml_utility(train, test, synthetic)
        second = ml_utility(train, test, synthetic)
        # Same seed -> bitwise-identical deltas (no hidden random state).
        assert first == second
        for a, b in zip(first.scores, second.scores):
            assert a.accuracy_delta == b.accuracy_delta
            assert a.auc_delta == b.auc_delta

    def test_perfect_synthetic_has_zero_delta(self):
        data = _labelled_dataset()
        train, test = train_test_split(data, 0.25, rng=2)
        report = ml_utility(train, test, synthetic=train)
        assert report.worst_accuracy_delta == 0.0
        for score in report.scores:
            assert score.auc_delta == 0.0

    def test_learnable_target_beats_chance(self):
        data = _labelled_dataset(noise=0.05)
        train, test = train_test_split(data, 0.25, rng=3)
        report = ml_utility(train, test, train)
        by_model = {score.model: score for score in report.scores}
        assert by_model["logistic"].real_accuracy > 0.85
        assert by_model["logistic"].real_auc > 0.85
        # A stump sees one one-hot bucket, so only modest lift is possible.
        assert by_model["stump"].real_accuracy > 0.55

    def test_label_shuffled_synthetic_scores_worse(self):
        data = _labelled_dataset(noise=0.05)
        train, test = train_test_split(data, 0.25, rng=4)
        shuffled_values = train.values.copy()
        rng = np.random.default_rng(11)
        shuffled_values[:, 2] = rng.permutation(shuffled_values[:, 2])
        shuffled = Dataset(shuffled_values, train.schema)
        report = ml_utility(train, test, shuffled)
        # Breaking the feature-label dependence must cost real accuracy.
        assert report.worst_accuracy_delta > 0.2

    def test_explicit_target_overrides_annotation(self):
        data = _labelled_dataset()
        train, test = train_test_split(data, 0.25, rng=5)
        report = ml_utility(train, test, train, target="A0")
        assert report.target == "A0"

    def test_missing_target_raises(self):
        schema = Schema.from_domain_sizes([20, 10, 2])
        rng = np.random.default_rng(0)
        data = Dataset(rng.integers(0, [20, 10, 2], (100, 3)), schema)
        train, test = train_test_split(data, 0.25, rng=0)
        with pytest.raises(ValueError, match="no target attribute"):
            ml_utility(train, test, train)

    def test_schema_mismatch_rejected(self):
        data = _labelled_dataset()
        train, test = train_test_split(data, 0.25, rng=6)
        other = Dataset(
            np.zeros((10, 2), dtype=int), Schema.from_domain_sizes([5, 5])
        )
        with pytest.raises(ValueError, match="schema"):
            ml_utility(train, test, other)

    def test_unknown_model_rejected(self):
        data = _labelled_dataset()
        train, test = train_test_split(data, 0.25, rng=7)
        with pytest.raises(ValueError, match="unknown model"):
            ml_utility(train, test, train, models=("forest",))

    def test_single_class_test_set_gets_neutral_auc(self):
        data = _labelled_dataset()
        train, _ = train_test_split(data, 0.25, rng=8)
        constant = train.values.copy()
        constant[:, 2] = 0
        test = Dataset(constant[:50], train.schema)
        report = ml_utility(train, test, train)
        for score in report.scores:
            assert score.real_auc == 0.5
            assert score.synthetic_auc == 0.5

    def test_to_dict_round_trips_json(self):
        import json

        data = _labelled_dataset(n=200)
        train, test = train_test_split(data, 0.25, rng=9)
        document = json.loads(json.dumps(ml_utility(train, test, train).to_dict()))
        assert document["target"] == "A2"
        assert [m["model"] for m in document["models"]] == ["logistic", "stump"]
