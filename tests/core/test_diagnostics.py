"""Tests for the release-diagnostics planner."""

import numpy as np
import pytest

from repro.core.diagnostics import compare_methods, plan_release


class TestPlanRelease:
    def test_budget_split(self):
        plan = plan_release(0.9, 10_000, 4, k=8.0)
        assert plan.epsilon1 == pytest.approx(0.8)
        assert plan.epsilon2 == pytest.approx(0.1)
        assert plan.per_margin_epsilon == pytest.approx(0.2)
        assert plan.per_pair_epsilon == pytest.approx(0.1 / 6)

    def test_kendall_noise_scale_matches_lemma(self):
        plan = plan_release(1.0, 50_000, 2, k=1.0, subsample="full")
        # eps2 = 0.5, one pair, sensitivity 4/(n+1).
        expected = (4.0 / 50_001) / 0.5
        assert plan.coefficient_noise_scale == pytest.approx(expected)
        assert plan.tau_subsample == 50_000

    def test_auto_subsample_rule(self):
        plan = plan_release(1.0, 10**6, 8, k=8.0)
        from repro.core.kendall_matrix import kendall_subsample_size

        assert plan.tau_subsample == kendall_subsample_size(8, plan.epsilon2)

    def test_mle_plan_reports_partitions(self):
        plan = plan_release(1.0, 10**6, 4, method="mle")
        assert plan.mle_partitions is not None
        assert plan.coefficient_noise_scale > 0

    def test_mle_noisier_than_kendall_at_moderate_n(self):
        """The closed-form version of Figure 6's conclusion."""
        kendall, mle = compare_methods(0.5, 20_000, 4)
        assert kendall.coefficient_noise_scale <= mle.coefficient_noise_scale

    def test_expected_errors_positive_and_consistent(self):
        plan = plan_release(1.0, 10_000, 4)
        assert plan.expected_margin_count_error == plan.margin_noise_scale
        assert plan.expected_margin_fraction_error == pytest.approx(
            plan.margin_noise_scale / 10_000
        )
        assert plan.expected_coefficient_error >= plan.coefficient_noise_scale

    def test_more_budget_less_noise(self):
        small = plan_release(0.1, 10_000, 4)
        large = plan_release(10.0, 10_000, 4)
        assert large.margin_noise_scale < small.margin_noise_scale
        assert large.coefficient_noise_scale < small.coefficient_noise_scale

    def test_more_dimensions_more_noise_per_piece(self):
        low = plan_release(1.0, 10_000, 2)
        high = plan_release(1.0, 10_000, 8)
        assert high.margin_noise_scale > low.margin_noise_scale
        assert high.per_pair_epsilon < low.per_pair_epsilon

    def test_summary_mentions_key_numbers(self):
        plan = plan_release(1.0, 10_000, 4)
        text = plan.summary()
        assert "eps1" in text and "coefficients" in text
        assert "Kendall subsample" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_release(0.0, 100, 2)
        with pytest.raises(ValueError):
            plan_release(1.0, 1, 2)
        with pytest.raises(ValueError):
            plan_release(1.0, 100, 2, method="bayes")
        with pytest.raises(ValueError):
            plan_release(1.0, 100, 2, subsample="sometimes")


class TestPlanPredictsReality:
    def test_kendall_plan_scale_matches_observed_noise(self):
        """The planner's coefficient scale must match the actual spread
        of released coefficients (same invariant as the mechanism test,
        but driven through the planner's closed form)."""
        from repro.core.kendall_matrix import dp_kendall_correlation

        n, epsilon = 2000, 1.0
        plan = plan_release(epsilon, n, 2, k=1.0, subsample="full")
        rng = np.random.default_rng(0)
        data = rng.standard_normal((n, 2))
        taus = []
        for seed in range(300):
            matrix = dp_kendall_correlation(
                data, plan.epsilon2, rng=seed, subsample=None
            )
            taus.append((2 / np.pi) * np.arcsin(matrix[0, 1]))
        observed_std = float(np.std(taus))
        expected_std = np.sqrt(2.0) * plan.coefficient_noise_scale
        assert observed_std == pytest.approx(expected_std, rel=0.25)
