"""Tests for Algorithm 3 (sampling DP synthetic data)."""

import numpy as np
import pytest

from repro.core.sampling import sample_pseudo_copula, sample_synthetic
from repro.data.dataset import Schema
from repro.stats.correlation import correlation_from_tau
from repro.stats.ecdf import HistogramCDF
from repro.stats.kendall import kendall_tau


class TestSamplePseudoCopula:
    def test_shape_and_range(self):
        correlation = np.array([[1.0, 0.5], [0.5, 1.0]])
        u = sample_pseudo_copula(correlation, 500, rng=0)
        assert u.shape == (500, 2)
        assert (u > 0).all() and (u < 1).all()

    def test_uniform_margins(self):
        correlation = np.array([[1.0, 0.8], [0.8, 1.0]])
        u = sample_pseudo_copula(correlation, 20_000, rng=1)
        # Kolmogorov distance of each margin from U(0,1).
        for j in range(2):
            sorted_u = np.sort(u[:, j])
            grid = (np.arange(1, 20_001)) / 20_001
            assert np.abs(sorted_u - grid).max() < 0.02

    def test_dependence_matches_correlation(self):
        rho = 0.7
        correlation = np.array([[1.0, rho], [rho, 1.0]])
        u = sample_pseudo_copula(correlation, 8000, rng=2)
        tau = kendall_tau(u[:, 0], u[:, 1])
        assert correlation_from_tau(tau) == pytest.approx(rho, abs=0.05)

    def test_repairs_indefinite_input(self):
        bad = np.array([[1.0, 0.9, -0.9], [0.9, 1.0, 0.9], [-0.9, 0.9, 1.0]])
        u = sample_pseudo_copula(bad, 100, rng=3)
        assert u.shape == (100, 3)

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            sample_pseudo_copula(np.eye(2), 0)


class TestSampleSynthetic:
    def _margins_and_schema(self):
        margins = [
            HistogramCDF(np.array([10.0, 20.0, 30.0, 40.0])),
            HistogramCDF(np.ones(6)),
        ]
        schema = Schema.from_domain_sizes([4, 6])
        return margins, schema

    def test_output_schema_and_size(self):
        margins, schema = self._margins_and_schema()
        data = sample_synthetic(np.eye(2), margins, 300, schema, rng=0)
        assert data.n_records == 300
        assert data.schema == schema

    def test_margins_respected(self):
        margins, schema = self._margins_and_schema()
        data = sample_synthetic(np.eye(2), margins, 50_000, schema, rng=1)
        counts = data.marginal_counts(0)
        assert counts / counts.sum() == pytest.approx(
            [0.1, 0.2, 0.3, 0.4], abs=0.01
        )

    def test_dependence_propagates_to_output(self):
        rho = 0.85
        margins = [HistogramCDF(np.ones(100)), HistogramCDF(np.ones(100))]
        schema = Schema.from_domain_sizes([100, 100])
        correlation = np.array([[1.0, rho], [rho, 1.0]])
        data = sample_synthetic(correlation, margins, 6000, schema, rng=2)
        tau = kendall_tau(data.column(0), data.column(1))
        assert correlation_from_tau(tau) == pytest.approx(rho, abs=0.06)

    def test_rejects_margin_count_mismatch(self):
        margins, schema = self._margins_and_schema()
        with pytest.raises(ValueError):
            sample_synthetic(np.eye(3), margins, 10, schema)

    def test_rejects_domain_mismatch(self):
        margins = [HistogramCDF(np.ones(5)), HistogramCDF(np.ones(6))]
        schema = Schema.from_domain_sizes([4, 6])
        with pytest.raises(ValueError):
            sample_synthetic(np.eye(2), margins, 10, schema)

    def test_rejects_schema_width_mismatch(self):
        margins, _ = self._margins_and_schema()
        with pytest.raises(ValueError):
            sample_synthetic(
                np.eye(2), margins, 10, Schema.from_domain_sizes([4, 6, 2])
            )
