"""Tests for the non-private Gaussian/t copula models and AIC selection."""

import numpy as np
import pytest

from repro.core.copula import GaussianCopulaModel, TCopulaModel
from repro.core.selection import aic_score, rank_copulas, select_copula
from repro.data.dataset import Dataset, Schema
from repro.data.synthetic import SyntheticSpec, gaussian_dependence_data
from repro.stats.correlation import correlation_from_tau
from repro.stats.kendall import kendall_tau


def _gaussian_copula_dataset(rho=0.7, n=4000, seed=0):
    correlation = np.array([[1.0, rho], [rho, 1.0]])
    spec = SyntheticSpec(
        n_records=n, domain_sizes=(150, 150), correlation=correlation
    )
    return gaussian_dependence_data(spec, rng=seed)


def _t_copula_dataset(rho=0.7, df=3.0, n=4000, seed=0):
    rng = np.random.default_rng(seed)
    correlation = np.array([[1.0, rho], [rho, 1.0]])
    normals = rng.multivariate_normal([0, 0], correlation, size=n)
    chi2 = rng.chisquare(df, size=n)
    t_samples = normals / np.sqrt(chi2 / df)[:, None]
    from scipy import stats as sps

    u = sps.t.cdf(t_samples, df)
    values = np.clip((u * 150).astype(int), 0, 149)
    return Dataset(values, Schema.from_domain_sizes([150, 150]))


class TestGaussianCopulaModel:
    def test_fit_recovers_correlation(self):
        data = _gaussian_copula_dataset(rho=0.7)
        model = GaussianCopulaModel().fit(data)
        assert model.correlation_[0, 1] == pytest.approx(0.7, abs=0.05)

    def test_sample_preserves_dependence(self):
        data = _gaussian_copula_dataset(rho=0.6, n=6000)
        model = GaussianCopulaModel().fit(data)
        synthetic = model.sample(rng=1)
        tau = kendall_tau(synthetic.column(0), synthetic.column(1))
        assert correlation_from_tau(tau) == pytest.approx(0.6, abs=0.06)

    def test_sample_preserves_margins(self):
        data = _gaussian_copula_dataset(n=10_000)
        model = GaussianCopulaModel().fit(data)
        synthetic = model.sample(rng=2)
        original = data.marginal_counts(0) / data.n_records
        produced = synthetic.marginal_counts(0) / synthetic.n_records
        assert np.abs(original - produced).max() < 0.02

    def test_normal_scores_estimator(self):
        data = _gaussian_copula_dataset(rho=0.5)
        model = GaussianCopulaModel(estimator="normal_scores").fit(data)
        assert model.correlation_[0, 1] == pytest.approx(0.5, abs=0.06)

    def test_loglikelihood_prefers_true_dependence(self):
        dependent = _gaussian_copula_dataset(rho=0.8, seed=3)
        model = GaussianCopulaModel().fit(dependent)
        shuffled_values = dependent.values.copy()
        rng = np.random.default_rng(4)
        shuffled_values[:, 1] = rng.permutation(shuffled_values[:, 1])
        shuffled = Dataset(shuffled_values, dependent.schema)
        assert model.loglikelihood(dependent) > model.loglikelihood(shuffled)

    def test_n_parameters(self):
        data = _gaussian_copula_dataset()
        model = GaussianCopulaModel().fit(data)
        assert model.n_parameters() == 1

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GaussianCopulaModel().sample(10)

    def test_rejects_unknown_estimator(self):
        with pytest.raises(ValueError):
            GaussianCopulaModel(estimator="moments")


class TestTCopulaModel:
    def test_fit_recovers_correlation(self):
        data = _t_copula_dataset(rho=0.7)
        model = TCopulaModel().fit(data)
        assert model.correlation_[0, 1] == pytest.approx(0.7, abs=0.07)

    def test_fit_picks_small_df_for_heavy_tails(self):
        data = _t_copula_dataset(df=3.0, n=6000)
        model = TCopulaModel().fit(data)
        assert model.df_ <= 8.0

    def test_fit_picks_large_df_for_gaussian_data(self):
        data = _gaussian_copula_dataset(n=6000, seed=5)
        model = TCopulaModel().fit(data)
        assert model.df_ >= 8.0

    def test_sample_shape(self):
        data = _t_copula_dataset()
        model = TCopulaModel().fit(data)
        synthetic = model.sample(500, rng=6)
        assert synthetic.n_records == 500
        assert synthetic.schema == data.schema

    def test_n_parameters_counts_df(self):
        data = _t_copula_dataset()
        model = TCopulaModel().fit(data)
        assert model.n_parameters() == 2

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TCopulaModel().sample(5)


class TestSelection:
    def test_aic_formula(self):
        assert aic_score(-100.0, 3) == pytest.approx(206.0)

    def test_gaussian_data_selects_gaussian_or_high_df_t(self):
        data = _gaussian_copula_dataset(n=5000, seed=7)
        fit = select_copula(data)
        # Either family is statistically fine on Gaussian data; what
        # matters is a valid winner with a finite score.
        assert fit.name in ("gaussian", "t")
        assert np.isfinite(fit.aic)

    def test_heavy_tail_data_selects_t(self):
        data = _t_copula_dataset(df=2.0, n=6000, seed=8)
        fit = select_copula(data)
        assert fit.name == "t"

    def test_rank_copulas_returns_all(self):
        data = _gaussian_copula_dataset(n=2000, seed=9)
        scores = rank_copulas(data)
        assert set(scores) == {"gaussian", "t"}

    def test_rejects_unknown_family(self):
        data = _gaussian_copula_dataset(n=500, seed=10)
        with pytest.raises(ValueError):
            select_copula(data, candidates=["clayton"])
