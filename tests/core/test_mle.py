"""Tests for Algorithm 2 (subsample-and-aggregate DP MLE)."""

import numpy as np
import pytest

from repro.core.mle import (
    _blockwise_normal_scores,
    dp_mle_correlation,
    required_partitions,
)
from repro.stats.psd_repair import is_positive_definite


def _gaussian_sample(correlation, n, seed):
    rng = np.random.default_rng(seed)
    m = correlation.shape[0]
    return rng.multivariate_normal(np.zeros(m), correlation, size=n)


class TestRequiredPartitions:
    def test_paper_bound(self):
        # l > C(m,2) / (0.025 * eps2)
        assert required_partitions(8, 1.0) == int(np.ceil(28 / 0.025))
        assert required_partitions(2, 0.5) == 80

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            required_partitions(4, 0.0)


class TestBlockwiseNormalScores:
    def test_shape(self):
        blocks = np.random.default_rng(0).standard_normal((5, 50, 3))
        out = _blockwise_normal_scores(blocks)
        assert out.shape == (5, 3, 3)

    def test_each_block_is_correlation(self):
        blocks = np.random.default_rng(1).standard_normal((4, 100, 3))
        out = _blockwise_normal_scores(blocks)
        for matrix in out:
            assert np.allclose(np.diag(matrix), 1.0)
            assert np.abs(matrix).max() <= 1.0 + 1e-9

    def test_matches_single_block_normal_scores(self):
        from repro.stats.correlation import normal_scores_correlation
        from repro.stats.ecdf import pseudo_copula_transform

        data = np.random.default_rng(2).standard_normal((200, 3))
        blocked = _blockwise_normal_scores(data[None])
        direct = normal_scores_correlation(pseudo_copula_transform(data))
        assert np.allclose(blocked[0], direct, atol=1e-10)

    def test_recovers_dependence(self):
        correlation = np.array([[1.0, 0.8], [0.8, 1.0]])
        data = _gaussian_sample(correlation, 6000, 3)
        out = _blockwise_normal_scores(data.reshape(10, 600, 2))
        assert out.mean(axis=0)[0, 1] == pytest.approx(0.8, abs=0.05)


class TestDPMLECorrelation:
    def test_output_is_pd_correlation(self, synthetic_4d):
        matrix = dp_mle_correlation(synthetic_4d.values.astype(float), 1.0, rng=0)
        assert matrix.shape == (4, 4)
        assert np.allclose(np.diag(matrix), 1.0)
        assert is_positive_definite(matrix)

    def test_recovers_correlation_with_ample_data_and_budget(self):
        correlation = np.array([[1.0, 0.6], [0.6, 1.0]])
        data = _gaussian_sample(correlation, 40_000, 1)
        matrix = dp_mle_correlation(data, 100.0, l=50, rng=2)
        assert matrix[0, 1] == pytest.approx(0.6, abs=0.08)

    def test_l_caps_to_keep_blocks_viable(self):
        # Paper bound would demand l in the thousands; with only 200
        # records the implementation must cap l rather than crash.
        data = _gaussian_sample(np.eye(3), 200, 3)
        matrix = dp_mle_correlation(data, 0.1, rng=4)
        assert is_positive_definite(matrix)

    def test_pairwise_mle_estimator(self):
        correlation = np.array([[1.0, 0.5], [0.5, 1.0]])
        data = _gaussian_sample(correlation, 2000, 5)
        matrix = dp_mle_correlation(
            data, 50.0, l=8, rng=6, estimator="pairwise_mle"
        )
        assert matrix[0, 1] == pytest.approx(0.5, abs=0.15)

    def test_noise_decreases_with_more_partitions(self):
        """The coefficient noise scale is Λ C(m,2) / (l ε₂): doubling l
        should shrink the spread of the released coefficient."""
        data = _gaussian_sample(np.eye(2), 20_000, 7)
        spreads = {}
        for l in (10, 200):
            estimates = [
                dp_mle_correlation(data, 0.5, l=l, rng=seed)[0, 1]
                for seed in range(25)
            ]
            spreads[l] = np.std(estimates)
        assert spreads[200] < spreads[10]

    def test_single_column_identity(self):
        matrix = dp_mle_correlation(np.zeros((50, 1)), 1.0, rng=8)
        assert (matrix == np.eye(1)).all()

    def test_rejects_unknown_estimator(self, synthetic_4d):
        with pytest.raises(ValueError):
            dp_mle_correlation(
                synthetic_4d.values.astype(float), 1.0, estimator="bayes"
            )

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            dp_mle_correlation(np.zeros(10), 1.0)
