"""Tests for Algorithm 5 (DP Kendall correlation matrix)."""

import numpy as np
import pytest

from repro.core.kendall_matrix import dp_kendall_correlation, kendall_subsample_size
from repro.stats.psd_repair import is_positive_definite


def _correlated_sample(rho, n, seed):
    rng = np.random.default_rng(seed)
    return rng.multivariate_normal([0, 0], [[1, rho], [rho, 1]], size=n)


class TestSubsampleSize:
    def test_paper_rule(self):
        # n̂ = ceil(50 * m(m-1) / eps2)
        assert kendall_subsample_size(8, 1.0) == 2800
        assert kendall_subsample_size(2, 0.1) == 1000

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            kendall_subsample_size(4, 0.0)


class TestDPKendallCorrelation:
    def test_output_is_pd_correlation(self, synthetic_4d):
        matrix = dp_kendall_correlation(synthetic_4d.values, 1.0, rng=0)
        assert matrix.shape == (4, 4)
        assert np.allclose(np.diag(matrix), 1.0)
        assert np.allclose(matrix, matrix.T)
        assert is_positive_definite(matrix)

    def test_recovers_correlation_at_high_epsilon(self):
        sample = _correlated_sample(0.7, 5000, 1)
        matrix = dp_kendall_correlation(sample, 1e6, rng=2, subsample=None)
        assert matrix[0, 1] == pytest.approx(0.7, abs=0.05)

    def test_noise_scale_shrinks_with_epsilon(self):
        sample = _correlated_sample(0.5, 3000, 3)
        errors = {}
        for epsilon in (0.05, 5.0):
            estimates = [
                dp_kendall_correlation(sample, epsilon, rng=seed, subsample=None)[0, 1]
                for seed in range(20)
            ]
            errors[epsilon] = np.std(estimates)
        assert errors[5.0] < errors[0.05]

    def test_subsample_auto_uses_paper_rule(self):
        sample = _correlated_sample(0.6, 50_000, 4)
        # eps2 = 1.0, m = 2: n̂ = 100 << n; estimate should still be sane.
        matrix = dp_kendall_correlation(sample, 1.0, rng=5, subsample="auto")
        assert -1.0 <= matrix[0, 1] <= 1.0

    def test_explicit_subsample_size(self):
        sample = _correlated_sample(0.6, 10_000, 6)
        matrix = dp_kendall_correlation(sample, 10.0, rng=7, subsample=500)
        assert is_positive_definite(matrix)

    def test_single_column_is_identity(self):
        matrix = dp_kendall_correlation(np.zeros((100, 1)), 1.0, rng=8)
        assert (matrix == np.eye(1)).all()

    def test_entries_clipped_into_unit_range(self):
        # Tiny epsilon: huge noise, but sin transform keeps entries valid.
        sample = _correlated_sample(0.2, 200, 9)
        matrix = dp_kendall_correlation(sample, 0.001, rng=10, subsample=None)
        assert np.abs(matrix).max() <= 1.0 + 1e-9
        assert is_positive_definite(matrix)

    def test_higham_repair_option(self):
        sample = np.random.default_rng(11).standard_normal((200, 6))
        matrix = dp_kendall_correlation(
            sample, 0.01, rng=12, subsample=None, repair="higham"
        )
        assert is_positive_definite(matrix)

    def test_rejects_unknown_repair(self, synthetic_4d):
        with pytest.raises(ValueError):
            dp_kendall_correlation(synthetic_4d.values, 1.0, repair="magic")

    def test_rejects_tiny_subsample(self, synthetic_4d):
        with pytest.raises(ValueError):
            dp_kendall_correlation(synthetic_4d.values, 1.0, subsample=1)

    def test_rejects_single_record(self):
        with pytest.raises(ValueError):
            dp_kendall_correlation(np.zeros((1, 3)), 1.0)

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            dp_kendall_correlation(np.zeros(10), 1.0)

    def test_deterministic_given_seed(self, synthetic_4d):
        a = dp_kendall_correlation(synthetic_4d.values, 1.0, rng=13)
        b = dp_kendall_correlation(synthetic_4d.values, 1.0, rng=13)
        assert np.allclose(a, b)
