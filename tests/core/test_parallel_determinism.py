"""The determinism contract: serial ≡ thread ≡ process, bitwise.

Every hot path that fans out over an ExecutionContext must produce
*identical* output on every backend for a fixed seed — parallelism is a
scheduling decision, never a statistical one.  These tests pin that
contract end-to-end for the four wired paths (Kendall matrix, hybrid
synthesis, per-block MLE, repeated-run evaluation) plus the fast matrix
kernel's exact equivalence with the reference implementations.
"""

import numpy as np
import pytest

from repro.core.hybrid import DPCopulaHybrid
from repro.core.kendall_matrix import dp_kendall_correlation
from repro.core.mle import dp_mle_correlation
from repro.core.sampling import BatchedMarginInverter, sample_synthetic
from repro.data.dataset import Attribute, Dataset, Schema
from repro.experiments.runner import average_evaluation, make_method
from repro.parallel import ExecutionContext
from repro.queries.range_query import random_workload
from repro.stats.ecdf import HistogramCDF
from repro.stats.kendall import (
    kendall_tau_matrix,
    kendall_tau_merge,
    kendall_tau_naive,
    rank_code_columns,
)

BACKENDS = [
    ExecutionContext("serial"),
    ExecutionContext("thread", max_workers=4),
    ExecutionContext("process", max_workers=2),
]


def _mixed_data(n=400, seed=3):
    rng = np.random.default_rng(seed)
    values = np.column_stack(
        [
            rng.integers(0, 2, n),
            rng.integers(0, 3, n),
            rng.integers(0, 60, n),
            rng.integers(0, 80, n),
        ]
    )
    schema = Schema(
        [
            Attribute("a", 2),
            Attribute("b", 3),
            Attribute("c", 60),
            Attribute("d", 80),
        ]
    )
    return Dataset(values, schema)


def _all_equal(results):
    reference = results[0]
    return all(np.array_equal(reference, other) for other in results[1:])


class TestBackendEquivalence:
    def test_kendall_tau_matrix(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 40, size=(300, 6)).astype(float)
        matrices = [
            kendall_tau_matrix(values, context=context) for context in BACKENDS
        ]
        assert _all_equal(matrices)

    def test_dp_kendall_correlation(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 50, size=(500, 5))
        matrices = [
            dp_kendall_correlation(values, epsilon2=1.0, rng=7, context=context)
            for context in BACKENDS
        ]
        assert _all_equal(matrices)

    def test_dp_mle_correlation_pairwise(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=(240, 3))
        matrices = [
            dp_mle_correlation(
                values,
                epsilon2=5.0,
                l=8,
                rng=11,
                estimator="pairwise_mle",
                context=context,
            )
            for context in BACKENDS
        ]
        assert _all_equal(matrices)

    def test_hybrid_synthesis(self):
        data = _mixed_data()
        outputs = [
            DPCopulaHybrid(epsilon=4.0, rng=13, context=context)
            .fit_sample(data)
            .values
            for context in BACKENDS
        ]
        assert _all_equal(outputs)

    def test_average_evaluation(self):
        data = _mixed_data(n=600, seed=5)
        workload = random_workload(data.schema, 20, rng=6)
        results = [
            average_evaluation(
                make_method("dpcopula-kendall"),
                data,
                workload,
                epsilon=1.0,
                n_runs=3,
                rng=17,
                context=context,
            )
            for context in BACKENDS
        ]
        reference = results[0].evaluation
        for timed in results[1:]:
            assert timed.evaluation == reference


class TestFastKernelExactness:
    """The matrix kernel must equal the reference estimators exactly."""

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_naive_on_small_inputs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 40))
        values = np.column_stack(
            [
                rng.integers(0, int(rng.integers(2, 12)), n)
                for _ in range(4)
            ]
        ).astype(float)
        fast = kendall_tau_matrix(values, method="merge")
        naive = kendall_tau_matrix(values, method="naive")
        assert np.allclose(fast, naive, atol=1e-12)

    @pytest.mark.parametrize("domains", [(2, 2), (5, 500), (1000, 1000)])
    def test_matches_merge_bitwise(self, domains):
        rng = np.random.default_rng(sum(domains))
        n = 1000
        values = np.column_stack(
            [rng.integers(0, d, n) for d in domains]
        ).astype(float)
        fast = kendall_tau_matrix(values)
        assert fast[0, 1] == kendall_tau_merge(values[:, 0], values[:, 1])

    def test_constant_column_yields_zero(self):
        values = np.column_stack([np.zeros(50), np.arange(50)]).astype(float)
        assert kendall_tau_matrix(values)[0, 1] == 0.0
        assert kendall_tau_naive(values[:, 0], values[:, 1]) == 0.0

    def test_rank_codes_preserve_tie_structure(self):
        column = np.array([3.5, -1.0, 3.5, 2.0, -1.0])
        codes, tied = rank_code_columns(column[:, None])
        assert codes[0].tolist() == [2, 0, 2, 1, 0]
        assert tied == [2]  # two tied pairs: the 3.5s and the -1.0s


class TestSamplingVectorization:
    def _margins(self, seed=4, m=3):
        rng = np.random.default_rng(seed)
        return [
            HistogramCDF(rng.uniform(0.0, 10.0, size=int(rng.integers(3, 30))))
            for _ in range(m)
        ]

    def test_batched_inverter_matches_per_margin_inverse(self):
        margins = self._margins()
        inverter = BatchedMarginInverter(margins)
        uniforms = np.random.default_rng(8).uniform(size=(500, len(margins)))
        batched = inverter(uniforms)
        for j, margin in enumerate(margins):
            assert np.array_equal(batched[:, j], margin.inverse(uniforms[:, j]))

    def test_batched_inverter_handles_boundaries(self):
        margins = self._margins(seed=9)
        inverter = BatchedMarginInverter(margins)
        edges = np.tile(
            np.array([0.0, 1.0, 0.5, -0.2, 1.3])[:, None], (1, len(margins))
        )
        batched = inverter(edges)
        for j, margin in enumerate(margins):
            assert np.array_equal(batched[:, j], margin.inverse(edges[:, j]))

    def test_chunked_sampling_identical_to_single_pass(self):
        margins = self._margins(seed=10)
        correlation = np.eye(len(margins))
        schema = Schema(
            [
                Attribute(f"x{j}", margin.domain_size)
                for j, margin in enumerate(margins)
            ]
        )
        single = sample_synthetic(correlation, margins, 997, schema, rng=21)
        chunked = sample_synthetic(
            correlation, margins, 997, schema, rng=21, chunk_size=100
        )
        assert np.array_equal(single.values, chunked.values)

    def test_rejects_wrong_width(self):
        inverter = BatchedMarginInverter(self._margins())
        with pytest.raises(ValueError, match="uniform batch"):
            inverter(np.zeros((10, 7)))
