"""Tests for DP marginal publishing (step 1 of Algorithms 1/4)."""

import numpy as np
import pytest

from repro.core.margins import DPMargins
from repro.dp.budget import PrivacyBudget
from repro.histograms.identity import IdentityPublisher


class TestDPMarginsFit:
    def test_one_cdf_per_attribute(self, synthetic_4d):
        margins = DPMargins().fit(synthetic_4d, epsilon1=1.0, rng=0)
        assert margins.dimensions == 4
        assert len(margins.cdfs) == 4

    def test_cdf_domains_match_schema(self, synthetic_4d):
        margins = DPMargins().fit(synthetic_4d, epsilon1=1.0, rng=0)
        for cdf, attribute in zip(margins.cdfs, synthetic_4d.schema):
            assert cdf.domain_size == attribute.domain_size

    def test_budget_ledger_charged_per_margin(self, synthetic_4d):
        budget = PrivacyBudget(2.0)
        DPMargins().fit(synthetic_4d, epsilon1=1.0, rng=0, budget=budget)
        assert budget.spent == pytest.approx(1.0)
        assert len(budget.log) == 4
        assert all(amount == pytest.approx(0.25) for _, amount in budget.log)

    def test_accurate_at_high_epsilon(self, synthetic_4d):
        margins = DPMargins(publisher=IdentityPublisher()).fit(
            synthetic_4d, epsilon1=1e6, rng=0
        )
        exact = synthetic_4d.marginal_counts(0)
        exact_pmf = exact / exact.sum()
        assert np.abs(margins.cdfs[0].pmf - exact_pmf).max() < 1e-4

    def test_unfitted_access_raises(self):
        margins = DPMargins()
        with pytest.raises(RuntimeError):
            _ = margins.cdfs

    def test_rejects_bad_epsilon(self, synthetic_4d):
        with pytest.raises(ValueError):
            DPMargins().fit(synthetic_4d, epsilon1=0.0)


class TestTransforms:
    def test_transform_range(self, synthetic_4d):
        margins = DPMargins().fit(synthetic_4d, epsilon1=10.0, rng=0)
        u = margins.transform(synthetic_4d.values[:100])
        assert u.shape == (100, 4)
        assert (u > 0).all() and (u < 1).all()

    def test_inverse_transform_in_domain(self, synthetic_4d):
        margins = DPMargins().fit(synthetic_4d, epsilon1=10.0, rng=0)
        uniforms = np.random.default_rng(1).uniform(size=(200, 4))
        values = margins.inverse_transform(uniforms)
        for j, attribute in enumerate(synthetic_4d.schema):
            assert values[:, j].min() >= 0
            assert values[:, j].max() < attribute.domain_size

    def test_transform_rejects_wrong_width(self, synthetic_4d):
        margins = DPMargins().fit(synthetic_4d, epsilon1=1.0, rng=0)
        with pytest.raises(ValueError):
            margins.transform(np.zeros((5, 3)))

    def test_inverse_rejects_wrong_width(self, synthetic_4d):
        margins = DPMargins().fit(synthetic_4d, epsilon1=1.0, rng=0)
        with pytest.raises(ValueError):
            margins.inverse_transform(np.zeros((5, 2)))


class TestEstimatedTotal:
    def test_close_to_n_at_high_epsilon(self, synthetic_4d):
        margins = DPMargins(publisher=IdentityPublisher()).fit(
            synthetic_4d, epsilon1=100.0, rng=0
        )
        assert margins.estimated_total() == pytest.approx(
            synthetic_4d.n_records, rel=0.05
        )
