"""Tests for the hybrid scheme (Algorithm 6)."""

import numpy as np
import pytest

from repro.core.hybrid import DPCopulaHybrid
from repro.data.dataset import Attribute, Dataset, Schema


class TestHybridFitSample:
    def test_output_schema_matches(self, mixed_schema_dataset):
        hybrid = DPCopulaHybrid(epsilon=2.0, rng=0)
        synthetic = hybrid.fit_sample(mixed_schema_dataset)
        assert synthetic.schema == mixed_schema_dataset.schema

    def test_cardinality_close_to_original(self, mixed_schema_dataset):
        hybrid = DPCopulaHybrid(epsilon=5.0, rng=1)
        synthetic = hybrid.fit_sample(mixed_schema_dataset)
        assert synthetic.n_records == pytest.approx(
            mixed_schema_dataset.n_records, rel=0.1
        )

    def test_partition_proportions_preserved(self, mixed_schema_dataset):
        """The noisy per-cell counts should track the true cell sizes."""
        hybrid = DPCopulaHybrid(epsilon=10.0, rng=2)
        synthetic = hybrid.fit_sample(mixed_schema_dataset)
        for g in (0, 1):
            for f in (0, 1):
                true_count = int(
                    (
                        (mixed_schema_dataset.column(0) == g)
                        & (mixed_schema_dataset.column(1) == f)
                    ).sum()
                )
                synth_count = int(
                    ((synthetic.column(0) == g) & (synthetic.column(1) == f)).sum()
                )
                assert synth_count == pytest.approx(true_count, abs=30)

    def test_small_domain_autodetection(self, mixed_schema_dataset):
        hybrid = DPCopulaHybrid(epsilon=2.0, rng=3)
        hybrid.fit_sample(mixed_schema_dataset)
        # gender and flag are binary -> both partitioned on.
        small = mixed_schema_dataset.schema.small_domain_indices()
        assert small == [0, 1]

    def test_explicit_small_domain_indices(self, mixed_schema_dataset):
        hybrid = DPCopulaHybrid(
            epsilon=2.0, small_domain_indices=[0], rng=4
        )
        synthetic = hybrid.fit_sample(mixed_schema_dataset)
        assert synthetic.schema == mixed_schema_dataset.schema

    def test_no_small_domains_falls_back_to_plain_dpcopula(self, synthetic_4d):
        hybrid = DPCopulaHybrid(epsilon=1.0, rng=5)
        synthetic = hybrid.fit_sample(synthetic_4d)
        assert synthetic.n_records == synthetic_4d.n_records
        assert hybrid.budget_.spent == pytest.approx(1.0)

    def test_budget_accounting(self, mixed_schema_dataset):
        hybrid = DPCopulaHybrid(epsilon=1.0, partition_fraction=0.2, rng=6)
        hybrid.fit_sample(mixed_schema_dataset)
        budget = hybrid.budget_
        assert budget.epsilon == pytest.approx(1.0)
        assert budget.spent == pytest.approx(1.0)
        labels = [label for label, _ in budget.log]
        assert "partition counts" in labels
        assert "per-partition DPCopula" in labels

    def test_mle_variant(self, mixed_schema_dataset):
        hybrid = DPCopulaHybrid(epsilon=2.0, method="mle", rng=7)
        synthetic = hybrid.fit_sample(mixed_schema_dataset)
        assert synthetic.schema == mixed_schema_dataset.schema

    def test_empty_cells_get_few_records(self, rng):
        """A cell absent from the data should only gain noise-level mass."""
        schema = Schema(
            [Attribute("flag", 2), Attribute("value", 100)]
        )
        n = 500
        values = np.column_stack(
            [np.zeros(n, dtype=int), rng.integers(0, 100, size=n)]
        )
        data = Dataset(values, schema)
        hybrid = DPCopulaHybrid(epsilon=5.0, rng=8)
        synthetic = hybrid.fit_sample(data)
        phantom = int((synthetic.column(0) == 1).sum())
        assert phantom < 20

    def test_rejects_all_small_domains(self, rng):
        schema = Schema([Attribute("a", 2), Attribute("b", 3)])
        data = Dataset(
            np.column_stack(
                [rng.integers(0, 2, 50), rng.integers(0, 3, 50)]
            ),
            schema,
        )
        with pytest.raises(ValueError):
            DPCopulaHybrid(epsilon=1.0, rng=9).fit_sample(data)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DPCopulaHybrid(epsilon=1.0, partition_fraction=0.0)
        with pytest.raises(ValueError):
            DPCopulaHybrid(epsilon=1.0, method="quantum")
        with pytest.raises(ValueError):
            DPCopulaHybrid(epsilon=0.0)

    def test_rejects_partition_explosion(self, rng):
        schema = Schema(
            [Attribute(f"s{i}", 9) for i in range(6)] + [Attribute("big", 100)]
        )
        values = np.column_stack(
            [rng.integers(0, 9, 40) for _ in range(6)]
            + [rng.integers(0, 100, 40)]
        )
        data = Dataset(values, schema)
        with pytest.raises(ValueError):
            DPCopulaHybrid(epsilon=1.0, rng=10).fit_sample(data)
