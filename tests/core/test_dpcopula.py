"""Tests for the DPCopula synthesizers (Algorithms 1 and 4)."""

import numpy as np
import pytest

from repro.core.dpcopula import DPCopulaKendall, DPCopulaMLE
from repro.data.synthetic import SyntheticSpec, gaussian_dependence_data
from repro.histograms.identity import IdentityPublisher
from repro.stats.correlation import correlation_from_tau
from repro.stats.kendall import kendall_tau


@pytest.fixture(params=[DPCopulaKendall, DPCopulaMLE])
def synthesizer_class(request):
    return request.param


class TestFitSample:
    def test_output_matches_input_shape(self, synthetic_4d, synthesizer_class):
        synthesizer = synthesizer_class(epsilon=1.0, rng=0)
        synthetic = synthesizer.fit_sample(synthetic_4d)
        assert synthetic.n_records == synthetic_4d.n_records
        assert synthetic.schema == synthetic_4d.schema

    def test_sample_size_override(self, synthetic_4d, synthesizer_class):
        synthesizer = synthesizer_class(epsilon=1.0, rng=0).fit(synthetic_4d)
        assert synthesizer.sample(123).n_records == 123

    def test_budget_fully_spent_and_never_exceeded(
        self, synthetic_4d, synthesizer_class
    ):
        synthesizer = synthesizer_class(epsilon=0.7, rng=0).fit(synthetic_4d)
        budget = synthesizer.budget_
        assert budget.epsilon == pytest.approx(0.7)
        assert budget.spent == pytest.approx(0.7)

    def test_budget_split_follows_k(self, synthetic_4d):
        synthesizer = DPCopulaKendall(epsilon=0.9, k=8.0, rng=0)
        assert synthesizer.epsilon1 == pytest.approx(0.8)
        assert synthesizer.epsilon2 == pytest.approx(0.1)
        synthesizer.fit(synthetic_4d)
        margin_spends = [a for label, a in synthesizer.budget_.log if "margin" in label]
        assert len(margin_spends) == 4
        assert sum(margin_spends) == pytest.approx(0.8)

    def test_sampling_is_pure_postprocessing(self, synthetic_4d, synthesizer_class):
        """Repeated sampling must not change the spent budget."""
        synthesizer = synthesizer_class(epsilon=1.0, rng=0).fit(synthetic_4d)
        spent_before = synthesizer.budget_.spent
        for _ in range(3):
            synthesizer.sample(100)
        assert synthesizer.budget_.spent == spent_before

    def test_unfitted_sample_raises(self, synthesizer_class):
        with pytest.raises(RuntimeError):
            synthesizer_class(epsilon=1.0).sample(10)

    def test_rejects_tiny_dataset(self, synthesizer_class, schema_2d):
        from repro.data.dataset import Dataset

        data = Dataset(np.array([[0, 0]]), schema_2d)
        with pytest.raises(ValueError):
            synthesizer_class(epsilon=1.0).fit(data)

    def test_rejects_bad_epsilon(self, synthesizer_class):
        with pytest.raises(ValueError):
            synthesizer_class(epsilon=-1.0)

    def test_repr_reflects_state(self, synthetic_4d):
        synthesizer = DPCopulaKendall(epsilon=1.0, rng=0)
        assert "fitted=False" in repr(synthesizer)
        synthesizer.fit(synthetic_4d)
        assert "fitted=True" in repr(synthesizer)


class TestStatisticalFidelity:
    def test_margins_preserved_at_high_epsilon(self):
        spec = SyntheticSpec(n_records=20_000, domain_sizes=(50, 50), margins="zipf")
        data = gaussian_dependence_data(spec, rng=0)
        synthesizer = DPCopulaKendall(
            epsilon=1e5, margin_publisher=IdentityPublisher(), rng=1
        )
        synthetic = synthesizer.fit_sample(data)
        for j in range(2):
            original = data.marginal_counts(j) / data.n_records
            produced = synthetic.marginal_counts(j) / synthetic.n_records
            assert np.abs(original - produced).max() < 0.02

    def test_dependence_preserved_at_high_epsilon(self):
        correlation = np.array([[1.0, 0.75], [0.75, 1.0]])
        spec = SyntheticSpec(
            n_records=10_000, domain_sizes=(200, 200), correlation=correlation
        )
        data = gaussian_dependence_data(spec, rng=2)
        synthesizer = DPCopulaKendall(
            epsilon=1e5, margin_publisher=IdentityPublisher(), subsample=None, rng=3
        )
        synthetic = synthesizer.fit_sample(data)
        tau = kendall_tau(synthetic.column(0), synthetic.column(1))
        assert correlation_from_tau(tau) == pytest.approx(0.75, abs=0.06)

    def test_kendall_beats_mle_correlation_accuracy(self):
        """Figure 6's mechanism-level claim: the Kendall estimator's
        correlation matrix is closer to the truth than the MLE one at
        equal budget.  At m = 4 the paper's partition bound forces tiny
        MLE blocks, whose rank-based per-block estimates attenuate —
        exactly the weakness Figure 6 reports."""
        from repro.data.synthetic import random_correlation_matrix

        correlation = random_correlation_matrix(4, rng=4, strength=0.6)
        spec = SyntheticSpec(
            n_records=20_000,
            domain_sizes=(300,) * 4,
            correlation=correlation,
        )
        data = gaussian_dependence_data(spec, rng=4)
        kendall_errors, mle_errors = [], []
        for seed in range(6):
            k = DPCopulaKendall(epsilon=0.5, rng=seed).fit(data)
            m = DPCopulaMLE(epsilon=0.5, rng=seed).fit(data)
            kendall_errors.append(np.abs(k.correlation_ - correlation).max())
            mle_errors.append(np.abs(m.correlation_ - correlation).max())
        assert np.mean(kendall_errors) < np.mean(mle_errors)

    def test_correlation_matrix_always_valid(self, synthetic_4d):
        for epsilon in (0.01, 0.1, 1.0):
            synthesizer = DPCopulaKendall(epsilon=epsilon, rng=5).fit(synthetic_4d)
            matrix = synthesizer.correlation_
            assert np.allclose(np.diag(matrix), 1.0)
            assert np.linalg.eigvalsh(matrix).min() > 0


class TestConfiguration:
    def test_custom_margin_publisher(self, synthetic_4d):
        synthesizer = DPCopulaKendall(
            epsilon=1.0, margin_publisher=IdentityPublisher(), rng=0
        )
        synthetic = synthesizer.fit_sample(synthetic_4d)
        assert synthetic.n_records == synthetic_4d.n_records

    def test_mle_partition_override(self, synthetic_4d):
        synthesizer = DPCopulaMLE(epsilon=1.0, l=20, rng=0)
        synthesizer.fit(synthetic_4d)
        assert synthesizer.correlation_ is not None

    def test_kendall_without_subsampling(self, synthetic_4d):
        synthesizer = DPCopulaKendall(epsilon=1.0, subsample=None, rng=0)
        synthesizer.fit(synthetic_4d)
        assert synthesizer.correlation_ is not None
