"""Tests for the evolving-data extension (paper future work #2)."""

import numpy as np
import pytest

from repro.core.streaming import EvolvingDPCopula, epoch_budgets
from repro.data.synthetic import SyntheticSpec, gaussian_dependence_data


def _batch(n, seed):
    spec = SyntheticSpec(
        n_records=n,
        domain_sizes=(60, 60),
        correlation=np.array([[1.0, 0.6], [0.6, 1.0]]),
    )
    return gaussian_dependence_data(spec, rng=seed)


class TestEpochBudgets:
    def test_uniform_profile(self):
        budgets = epoch_budgets(1.0, 4)
        assert budgets == [0.25] * 4

    def test_geometric_profile_increases(self):
        budgets = epoch_budgets(1.0, 4, profile="geometric", ratio=2.0)
        assert budgets == sorted(budgets)
        assert sum(budgets) == pytest.approx(1.0)

    def test_total_always_epsilon(self):
        for profile in ("uniform", "geometric"):
            budgets = epoch_budgets(2.5, 7, profile=profile)
            assert sum(budgets) == pytest.approx(2.5)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            epoch_budgets(0.0, 3)
        with pytest.raises(ValueError):
            epoch_budgets(1.0, 0)
        with pytest.raises(ValueError):
            epoch_budgets(1.0, 3, profile="linear")


class TestEvolvingDPCopula:
    def test_release_grows_with_data(self):
        stream = EvolvingDPCopula(epsilon=2.0, max_epochs=3, rng=0)
        first = stream.observe(_batch(400, seed=1))
        second = stream.observe(_batch(600, seed=2))
        assert first.n_records == 400
        assert second.n_records == 1000  # cumulative

    def test_lifetime_budget_enforced(self):
        stream = EvolvingDPCopula(epsilon=1.0, max_epochs=2, rng=3)
        stream.observe(_batch(300, seed=4))
        stream.observe(_batch(300, seed=5))
        assert stream.exhausted
        with pytest.raises(RuntimeError):
            stream.observe(_batch(300, seed=6))

    def test_ledger_tracks_epochs(self):
        stream = EvolvingDPCopula(epsilon=1.0, max_epochs=4, rng=7)
        stream.observe(_batch(300, seed=8))
        stream.observe(_batch(300, seed=9))
        assert stream.ledger.spent == pytest.approx(0.5)
        assert stream.remaining_epochs() == 2

    def test_schema_mismatch_rejected(self):
        stream = EvolvingDPCopula(epsilon=1.0, max_epochs=3, rng=10)
        stream.observe(_batch(200, seed=11))
        spec = SyntheticSpec(n_records=100, domain_sizes=(30, 30))
        other = gaussian_dependence_data(spec, rng=12)
        with pytest.raises(ValueError):
            stream.observe(other)

    def test_latest_release(self):
        stream = EvolvingDPCopula(epsilon=1.0, max_epochs=2, rng=13)
        assert stream.latest_release is None
        release = stream.observe(_batch(200, seed=14))
        assert stream.latest_release is release

    def test_geometric_profile_spends_more_later(self):
        stream = EvolvingDPCopula(
            epsilon=1.0, max_epochs=3, profile="geometric", ratio=2.0, rng=15
        )
        stream.observe(_batch(200, seed=16))
        stream.observe(_batch(200, seed=17))
        spends = [amount for _, amount in stream.ledger.log]
        assert spends[1] > spends[0]

    def test_summary_mentions_epochs(self):
        stream = EvolvingDPCopula(epsilon=1.0, max_epochs=2, rng=18)
        stream.observe(_batch(200, seed=19))
        text = stream.summary()
        assert "epoch 1/2" in text
        assert "spent" in text and "reserved" in text

    def test_later_releases_track_accumulated_distribution(self):
        """With growing data and equal per-epoch budgets, the final
        release should approximate the accumulated margins well."""
        from repro.queries.metrics import margin_tvd

        stream = EvolvingDPCopula(epsilon=4.0, max_epochs=2, rng=20)
        stream.observe(_batch(2000, seed=21))
        release = stream.observe(_batch(6000, seed=22))
        from repro.data.dataset import concatenate

        accumulated = concatenate([_batch(2000, seed=21), _batch(6000, seed=22)])
        assert margin_tvd(accumulated, release, 0) < 0.15
