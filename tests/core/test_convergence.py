"""Tests for the Section 4.3 convergence diagnostics."""

import numpy as np
import pytest

from repro.core.convergence import (
    ConvergencePoint,
    joint_cdf_distance,
    margin_distance,
    max_margin_distance,
    run_convergence_study,
    tau_matrix_error,
)
from repro.core.dpcopula import DPCopulaKendall
from repro.data.synthetic import SyntheticSpec, gaussian_dependence_data


def _make_dataset(n, seed=0):
    correlation = np.array([[1.0, 0.6], [0.6, 1.0]])
    spec = SyntheticSpec(
        n_records=n, domain_sizes=(80, 80), correlation=correlation
    )
    return gaussian_dependence_data(spec, rng=seed)


class TestDistances:
    def test_identical_datasets_have_zero_distance(self):
        data = _make_dataset(1000)
        assert max_margin_distance(data, data) == 0.0
        assert tau_matrix_error(data, data, rng=0) == pytest.approx(0.0, abs=1e-12)
        assert joint_cdf_distance(data, data, rng=0) == 0.0

    def test_margin_distance_detects_shift(self):
        data = _make_dataset(2000, seed=1)
        shifted_spec = SyntheticSpec(
            n_records=2000, domain_sizes=(80, 80), margins="zipf"
        )
        shifted = gaussian_dependence_data(shifted_spec, rng=2)
        assert margin_distance(data, shifted, 0) > 0.1

    def test_tau_error_detects_dependence_change(self):
        dependent = _make_dataset(3000, seed=3)
        independent_spec = SyntheticSpec(
            n_records=3000, domain_sizes=(80, 80), correlation=np.eye(2)
        )
        independent = gaussian_dependence_data(independent_spec, rng=4)
        assert tau_matrix_error(dependent, independent, rng=5) > 0.2

    def test_joint_cdf_distance_bounded(self):
        a = _make_dataset(500, seed=6)
        b = _make_dataset(500, seed=7)
        distance = joint_cdf_distance(a, b, rng=8)
        assert 0.0 <= distance <= 1.0


class TestConvergenceStudy:
    def test_errors_shrink_with_cardinality(self):
        """Theorem 4.3, empirically: the DPCopula synthetic distribution
        approaches the original as n grows (fixed epsilon)."""
        cardinalities = [300, 10_000]
        results = run_convergence_study(
            cardinalities,
            make_dataset=lambda n: _make_dataset(n, seed=9),
            make_synthesizer=lambda: DPCopulaKendall(epsilon=1.0, rng=10),
            rng=11,
        )
        assert [point.n_records for point in results] == cardinalities
        small, large = results
        assert large.margin_sup_distance < small.margin_sup_distance
        assert large.joint_cdf_sup_distance <= small.joint_cdf_sup_distance + 0.02

    def test_point_structure(self):
        results = run_convergence_study(
            [200],
            make_dataset=lambda n: _make_dataset(n, seed=12),
            make_synthesizer=lambda: DPCopulaKendall(epsilon=2.0, rng=13),
            rng=14,
        )
        point = results[0]
        assert isinstance(point, ConvergencePoint)
        assert point.margin_sup_distance >= 0
        assert point.tau_error >= 0
