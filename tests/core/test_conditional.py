"""Tests for conditional Gaussian-copula sampling."""

import numpy as np
import pytest

from repro.core.conditional import ConditionalCopulaSampler
from repro.core.dpcopula import DPCopulaKendall
from repro.data.dataset import Schema
from repro.stats.ecdf import HistogramCDF


def _sampler(rho=0.8, domain=100):
    correlation = np.array([[1.0, rho], [rho, 1.0]])
    margins = [HistogramCDF(np.ones(domain)), HistogramCDF(np.ones(domain))]
    schema = Schema.from_domain_sizes([domain, domain])
    return ConditionalCopulaSampler(correlation, margins, schema)


class TestConditionalSampling:
    def test_fixed_attribute_is_constant(self):
        sampler = _sampler()
        out = sampler.sample(200, given={"A0": 42}, rng=0)
        assert (out.column(0) == 42).all()

    def test_conditioning_shifts_the_free_attribute(self):
        """With rho = 0.8 and uniform margins, conditioning on a high A0
        must shift A1's conditional distribution upward."""
        sampler = _sampler(rho=0.8)
        low = sampler.sample(3000, given={"A0": 5}, rng=1)
        high = sampler.sample(3000, given={"A0": 95}, rng=2)
        assert high.column(1).mean() > low.column(1).mean() + 20

    def test_zero_correlation_leaves_margin_unchanged(self):
        sampler = _sampler(rho=0.0)
        out = sampler.sample(20_000, given={"A0": 95}, rng=3)
        # A1 stays uniform: mean ~ 49.5.
        assert out.column(1).mean() == pytest.approx(49.5, abs=1.5)

    def test_unconditional_matches_plain_sampling(self):
        sampler = _sampler(rho=0.5)
        out = sampler.sample(500, rng=4)
        assert out.n_records == 500
        assert out.schema.dimensions == 2

    def test_all_attributes_fixed(self):
        sampler = _sampler()
        out = sampler.sample(10, given={"A0": 3, "A1": 7}, rng=5)
        assert (out.column(0) == 3).all()
        assert (out.column(1) == 7).all()

    def test_rejects_out_of_domain_value(self):
        sampler = _sampler(domain=50)
        with pytest.raises(ValueError):
            sampler.sample(10, given={"A0": 50})

    def test_rejects_unknown_attribute(self):
        sampler = _sampler()
        with pytest.raises(KeyError):
            sampler.sample(10, given={"Z": 1})

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            _sampler().sample(0)


class TestFromSynthesizer:
    def test_builds_and_samples(self, synthetic_4d):
        synthesizer = DPCopulaKendall(epsilon=2.0, rng=0).fit(synthetic_4d)
        sampler = ConditionalCopulaSampler.from_synthesizer(synthesizer)
        out = sampler.sample(100, given={"A1": 30}, rng=1)
        assert out.schema == synthetic_4d.schema
        assert (out.column(1) == 30).all()

    def test_conditioning_respects_learned_dependence(self, synthetic_4d):
        """synthetic_4d couples A0 and A1 at rho = 0.6; conditioning on a
        high A1 should lift A0."""
        synthesizer = DPCopulaKendall(epsilon=50.0, rng=2).fit(synthetic_4d)
        sampler = ConditionalCopulaSampler.from_synthesizer(synthesizer)
        low = sampler.sample(2000, given={"A1": 5}, rng=3)
        high = sampler.sample(2000, given={"A1": 55}, rng=4)
        assert high.column(0).mean() > low.column(0).mean()

    def test_rejects_unfitted(self):
        with pytest.raises(ValueError):
            ConditionalCopulaSampler.from_synthesizer(DPCopulaKendall(epsilon=1.0))


class TestValidation:
    def test_margin_count_mismatch(self):
        with pytest.raises(ValueError):
            ConditionalCopulaSampler(
                np.eye(3),
                [HistogramCDF(np.ones(10))] * 2,
                Schema.from_domain_sizes([10, 10]),
            )

    def test_schema_mismatch(self):
        with pytest.raises(ValueError):
            ConditionalCopulaSampler(
                np.eye(2),
                [HistogramCDF(np.ones(10))] * 2,
                Schema.from_domain_sizes([10, 10, 10]),
            )
