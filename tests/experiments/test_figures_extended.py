"""Direct unit tests for the remaining figure functions at tiny scale."""

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.figures import (
    fig06_kendall_vs_mle,
    fig07_census,
    fig09_distribution,
    fig11_scalability,
)

TINY = ExperimentScale(
    n_records=400,
    n_queries=8,
    n_runs=1,
    domain_size=32,
    dimensions=(2, 3),
    epsilons=(1.0,),
)


class TestFig06:
    def test_both_variants_and_metrics(self):
        result = fig06_kendall_vs_mle(scale=TINY)
        assert set(result.methods()) == {"dpcopula-kendall", "dpcopula-mle"}
        assert set(result.metrics()) == {"relative_error", "seconds"}

    def test_one_point_per_dimension(self):
        result = fig06_kendall_vs_mle(scale=TINY)
        xs = [x for x, _ in result.series("dpcopula-kendall", "relative_error")]
        assert xs == [2, 3]


class TestFig07:
    def test_brazil_point_methods_only(self):
        result = fig07_census(
            "brazil",
            scale=TINY,
            methods=("psd", "fp"),
        )
        assert result.figure_id == "fig7b"
        assert set(result.methods()) == {"psd", "fp"}

    def test_us_with_dense_baseline_on_coarse_grid(self):
        result = fig07_census(
            "us",
            scale=TINY,
            methods=("psd", "php"),
            dense_max_domain=16,
        )
        assert result.figure_id == "fig7a"
        assert "php" in result.methods()

    def test_rejects_unknown_dataset(self):
        with pytest.raises(ValueError):
            fig07_census("mars", scale=TINY)

    def test_sanity_bound_recorded(self):
        result = fig07_census("brazil", scale=TINY, methods=("psd",))
        assert result.parameters["sanity_bound"] == 10.0


class TestFig09:
    def test_anchored_queries_give_nonzero_errors(self):
        result = fig09_distribution(
            scale=TINY, margins=("zipf",), methods=("psd",), dimensions=3
        )
        values = [point.value for point in result.points]
        assert any(value > 0 for value in values)

    def test_method_margin_labels(self):
        result = fig09_distribution(
            scale=TINY, margins=("gaussian", "zipf"), methods=("psd",), dimensions=2
        )
        assert set(result.methods()) == {"psd:gaussian", "psd:zipf"}


class TestFig11:
    def test_both_timing_metrics(self):
        result = fig11_scalability(
            scale=TINY, cardinalities=(200, 400), dense_max_domain=16
        )
        assert set(result.metrics()) == {"seconds_vs_n", "seconds_vs_m"}
        ns = [x for x, _ in result.series("psd", "seconds_vs_n")]
        assert ns == [200, 400]
