"""Tests for experiment configuration (Table 3 defaults)."""

from repro.experiments.config import ExperimentScale, PaperDefaults


class TestPaperDefaults:
    def test_table_3_values(self):
        defaults = PaperDefaults()
        assert defaults.n_records == 50_000
        assert defaults.epsilon == 1.0
        assert defaults.dimensions == 8
        assert defaults.sanity_bound == 1.0
        assert defaults.ratio_k == 8.0
        assert defaults.domain_size == 1000

    def test_evaluation_protocol(self):
        defaults = PaperDefaults()
        assert defaults.queries_per_run == 1000
        assert defaults.runs == 5

    def test_real_dataset_sanity_bounds(self):
        defaults = PaperDefaults()
        assert defaults.us_sanity_fraction == 0.0005
        assert defaults.brazil_sanity_bound == 10.0


class TestExperimentScale:
    def test_paper_scale_matches_defaults(self):
        scale = ExperimentScale.paper()
        defaults = PaperDefaults()
        assert scale.n_records == defaults.n_records
        assert scale.n_queries == defaults.queries_per_run
        assert scale.n_runs == defaults.runs
        assert scale.domain_size == defaults.domain_size

    def test_small_is_small(self):
        small = ExperimentScale.small()
        paper = ExperimentScale.paper()
        assert small.n_records < paper.n_records
        assert small.n_queries < paper.n_queries

    def test_with_overrides(self):
        scale = ExperimentScale.small().with_(n_records=99)
        assert scale.n_records == 99
        assert scale.n_queries == ExperimentScale.small().n_queries

    def test_frozen(self):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            ExperimentScale.small().n_records = 5
