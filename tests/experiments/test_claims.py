"""Tests for the codified paper claims."""

import pytest

from repro.experiments.claims import (
    PAPER_CLAIMS,
    Claim,
    claims_report,
    dominates,
    endpoint_improvement,
    evaluate_claims,
    monotone,
)
from repro.experiments.figures import FigureResult


def _figure(points):
    figure = FigureResult("figX", "test")
    for x, method, metric, value in points:
        figure.add(x, method, metric, value)
    return figure


class TestDominates:
    def test_clear_winner(self):
        figure = _figure(
            [(e, "a", "relative_error", 0.1) for e in (0.1, 0.5, 1.0)]
            + [(e, "b", "relative_error", 0.5) for e in (0.1, 0.5, 1.0)]
        )
        assert dominates(figure, "a", "b")
        assert not dominates(figure, "b", "a")

    def test_fraction_threshold(self):
        figure = _figure(
            [(1, "a", "relative_error", 0.1), (2, "a", "relative_error", 0.9),
             (1, "b", "relative_error", 0.5), (2, "b", "relative_error", 0.5)]
        )
        assert dominates(figure, "a", "b", fraction=0.5)
        assert not dominates(figure, "a", "b", fraction=0.9)

    def test_no_shared_x(self):
        figure = _figure(
            [(1, "a", "relative_error", 0.1), (2, "b", "relative_error", 0.5)]
        )
        assert not dominates(figure, "a", "b")


class TestMonotone:
    def test_increasing(self):
        figure = _figure([(x, "a", "seconds", float(x)) for x in (1, 2, 3)])
        assert monotone(figure, "a", "seconds", "increasing")
        assert not monotone(figure, "a", "seconds", "decreasing")

    def test_unknown_direction(self):
        figure = _figure([(1, "a", "m", 1.0), (2, "a", "m", 2.0)])
        with pytest.raises(ValueError):
            monotone(figure, "a", "m", "sideways")

    def test_single_point_fails(self):
        figure = _figure([(1, "a", "m", 1.0)])
        assert not monotone(figure, "a", "m", "increasing")


def test_endpoint_improvement():
    figure = _figure(
        [(1, "a", "relative_error", 1.0), (10, "a", "relative_error", 0.2)]
    )
    assert endpoint_improvement(figure, "a", "relative_error")


class TestEvaluateClaims:
    def test_missing_figures_are_not_run(self):
        outcomes = evaluate_claims({})
        assert all(outcome.verdict == "NOT RUN" for outcome in outcomes)
        assert len(outcomes) == len(PAPER_CLAIMS)

    def test_passing_fig10(self):
        figure = _figure(
            [(m, "dpcopula-kendall", "absolute_error", 1.0) for m in (2, 4, 8)]
            + [(m, "psd", "absolute_error", 3.0) for m in (2, 4, 8)]
        )
        outcomes = evaluate_claims({"fig10": figure})
        fig10 = [o for o in outcomes if o.claim.claim_id == "fig10-wins"][0]
        assert fig10.verdict == "PASS"

    def test_failing_fig10(self):
        figure = _figure(
            [(m, "dpcopula-kendall", "absolute_error", 5.0) for m in (2, 4, 8)]
            + [(m, "psd", "absolute_error", 3.0) for m in (2, 4, 8)]
        )
        outcomes = evaluate_claims({"fig10": figure})
        fig10 = [o for o in outcomes if o.claim.claim_id == "fig10-wins"][0]
        assert fig10.verdict == "FAIL"

    def test_custom_claim(self):
        claim = Claim("custom", "figX", "always true", lambda r: True)
        outcomes = evaluate_claims(
            {"figX": _figure([(1, "a", "m", 1.0)])}, claims=[claim]
        )
        assert outcomes[0].verdict == "PASS"


def test_claims_report_renders_markdown():
    outcomes = evaluate_claims({})
    report = claims_report(outcomes)
    assert report.startswith("| Claim | Figure | Verdict |")
    assert "NOT RUN" in report


def test_claim_ids_unique():
    ids = [claim.claim_id for claim in PAPER_CLAIMS]
    assert len(set(ids)) == len(ids)


def test_every_figure_has_at_least_one_claim():
    claimed = {claim.figure_id for claim in PAPER_CLAIMS}
    assert {"fig5", "fig6", "fig7a", "fig7b", "fig8", "fig9", "fig10", "fig11"} <= claimed
