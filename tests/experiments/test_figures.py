"""Tests for the figure harness (tiny scales so the suite stays fast)."""

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.figures import (
    FigureResult,
    available_figures,
    fig05_ratio_k,
    fig08_range_size,
    fig10_dimensionality,
    run_figure,
)

TINY = ExperimentScale(
    n_records=400,
    n_queries=10,
    n_runs=1,
    domain_size=32,
    dimensions=(2, 3),
    epsilons=(1.0,),
)


class TestFigureResult:
    def test_add_and_series(self):
        result = FigureResult("figX", "test")
        result.add(1, "m1", "relative_error", 0.5)
        result.add(2, "m1", "relative_error", 0.4)
        result.add(1, "m2", "relative_error", 0.6)
        assert result.methods() == ["m1", "m2"]
        assert result.series("m1", "relative_error") == [(1, 0.5), (2, 0.4)]

    def test_to_table_renders(self):
        result = FigureResult("figX", "test", {"n": 10})
        result.add(1, "m1", "relative_error", 0.5)
        table = result.to_table()
        assert "figX" in table and "m1" in table and "0.5" in table

    def test_missing_cells_rendered_as_dash(self):
        result = FigureResult("figX", "test")
        result.add(1, "m1", "relative_error", 0.5)
        result.add(2, "m2", "relative_error", 0.4)
        assert "-" in result.to_table()


class TestFigureFunctions:
    def test_fig5_structure(self):
        result = fig05_ratio_k(scale=TINY, ks=(1.0, 8.0), epsilons=(1.0,))
        assert result.figure_id == "fig5"
        assert len(result.points) == 2
        assert result.metrics() == ["relative_error"]

    def test_fig8_two_metrics(self):
        result = fig08_range_size(
            scale=TINY, selectivities=(0.01,), methods=("psd",)
        )
        assert set(result.metrics()) == {"relative_error", "absolute_error"}

    def test_fig10_dimension_sweep(self):
        result = fig10_dimensionality(scale=TINY, methods=("psd",))
        xs = [x for x, _ in result.series("psd", "relative_error")]
        assert xs == [2, 3]

    def test_run_figure_dispatch(self):
        result = run_figure("fig5", scale=TINY, ks=(1.0,), epsilons=(1.0,))
        assert isinstance(result, FigureResult)

    def test_run_figure_rejects_unknown(self):
        with pytest.raises(ValueError):
            run_figure("fig99")

    def test_available_figures_complete(self):
        expected = {"fig5", "fig6", "fig7a", "fig7b", "fig8", "fig9", "fig10", "fig11"}
        assert set(available_figures()) == expected
