"""Tests for the experiment CLI."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.figures is None
        assert args.scale == "small"

    def test_figure_repeatable(self):
        args = build_parser().parse_args(["--figure", "fig5", "--figure", "fig8"])
        assert args.figures == ["fig5", "fig8"]

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--figure", "fig99"])

    def test_overrides(self):
        args = build_parser().parse_args(
            ["--n-records", "123", "--n-queries", "7", "--n-runs", "1"]
        )
        assert (args.n_records, args.n_queries, args.n_runs) == (123, 7, 1)


class TestMain:
    def test_runs_one_figure(self, capsys):
        code = main(
            [
                "--figure",
                "fig5",
                "--n-records",
                "300",
                "--n-queries",
                "5",
                "--n-runs",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "relative_error" in out
