"""Tests for the scenario suite and the source-materialization helpers."""

import json

import numpy as np
import pytest

from repro.data.dataset import Dataset, Schema
from repro.experiments.runner import (
    MAX_DENSE_CELLS,
    source_as_dataset,
    utility_evaluation,
    make_method,
)
from repro.experiments.scenarios import (
    DEFAULT_METHODS,
    SCENARIOS,
    list_scenarios,
    make_scenario,
    run_scenario,
)
from repro.histograms.base import DenseNoisyHistogram, RangeQueryAnswerer


class TestCatalog:
    def test_list_is_sorted_and_complete(self):
        names = list_scenarios()
        assert names == sorted(names)
        assert set(names) == set(SCENARIOS)
        assert "smoke-mixed" in names and "acs-income" in names

    def test_every_scenario_is_well_formed(self):
        for name in list_scenarios():
            scenario = make_scenario(name)
            schema = scenario.schema
            # Targets make the ML workload runnable everywhere.
            assert schema.target in scenario.attribute_names
            # Dense baselines must be able to participate.
            assert schema.domain_space() <= MAX_DENSE_CELLS
            assert scenario.n_records > 0

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            make_scenario("does-not-exist")


class TestGenerate:
    def test_deterministic_per_seed(self):
        scenario = make_scenario("smoke-mixed")
        first = scenario.generate(7)
        second = scenario.generate(7)
        np.testing.assert_array_equal(first.values, second.values)
        assert not np.array_equal(first.values, scenario.generate(8).values)

    def test_shape_and_schema(self):
        scenario = make_scenario("smoke-mixed")
        data = scenario.generate(0)
        assert data.n_records == scenario.n_records
        assert data.schema == scenario.schema
        assert data.schema.target == "flag"
        for j, size in enumerate(scenario.domain_sizes):
            assert data.column(j).min() >= 0
            assert data.column(j).max() < size


class TestRunScenario:
    def test_smoke_scenario_end_to_end(self):
        result = run_scenario(
            "smoke-mixed",
            methods=("dpcopula-kendall", "identity"),
            epsilon=2.0,
            seed=0,
            n_queries=10,
            marginal_k=2,
            max_marginals=4,
        )
        assert result.scenario == "smoke-mixed"
        assert [e.method for e in result.evaluations] == [
            "dpcopula-kendall",
            "identity",
        ]
        for evaluation in result.evaluations:
            assert np.isfinite(evaluation.range_queries.mean_relative_error)
            assert 0.0 <= evaluation.marginals.avg_tvd
            # Every scenario carries a target, so ML scores must exist.
            assert evaluation.ml is not None
            assert evaluation.fit_seconds >= 0.0

    def test_unsupported_method_is_skipped_not_fatal(self):
        # "ug" only accepts 2-D data; smoke-mixed has 4 attributes.
        result = run_scenario(
            "smoke-mixed",
            methods=("ug",),
            n_queries=5,
            marginal_k=1,
            max_marginals=2,
        )
        assert result.evaluations == ()
        assert "ug" in result.skipped

    def test_default_method_roster(self):
        assert "dpcopula-kendall" in DEFAULT_METHODS
        assert len(DEFAULT_METHODS) >= 3

    def test_to_dict_round_trips_json(self):
        result = run_scenario(
            "smoke-mixed",
            methods=("dpcopula-kendall",),
            n_queries=5,
            marginal_k=1,
            max_marginals=2,
        )
        document = json.loads(json.dumps(result.to_dict()))
        assert document["scenario"] == "smoke-mixed"
        (method_doc,) = document["methods"]
        assert method_doc["method"] == "dpcopula-kendall"
        assert "range_queries" in method_doc and "marginals" in method_doc
        assert method_doc["ml"]["target"] == "flag"

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ValueError):
            run_scenario("smoke-mixed", epsilon=0.0)


class _ExactAnswerer(RangeQueryAnswerer):
    """Noise-free answerer backed by true counts (bisection-path probe)."""

    def __init__(self, dataset):
        self._counts = np.zeros(tuple(a.domain_size for a in dataset.schema))
        np.add.at(
            self._counts,
            tuple(dataset.values[:, j] for j in range(dataset.dimensions)),
            1.0,
        )

    def range_count(self, ranges):
        slices = tuple(slice(lo, hi + 1) for lo, hi in ranges)
        return float(self._counts[slices].sum())

    @property
    def dimensions(self):
        return self._counts.ndim


class TestSourceAsDataset:
    def test_dataset_passes_through_untouched(self):
        schema = Schema.from_domain_sizes([5, 5])
        data = Dataset(np.zeros((10, 2), dtype=int), schema)
        assert source_as_dataset(data, schema, 99, rng=0) is data

    def test_dense_histogram_sampling_respects_domain(self):
        schema = Schema.from_domain_sizes([6, 4])
        counts = np.zeros((6, 4))
        counts[2, 1] = 30.0
        counts[5, 3] = 10.0
        sample = source_as_dataset(DenseNoisyHistogram(counts), schema, 400, rng=0)
        assert sample.n_records == 400
        assert sample.schema == schema
        cells = set(map(tuple, sample.values))
        assert cells <= {(2, 1), (5, 3)}
        # Cell frequencies track the (normalized) counts.
        share = np.mean([tuple(row) == (2, 1) for row in sample.values])
        assert share == pytest.approx(0.75, abs=0.08)

    def test_dense_histogram_with_negative_counts_still_samples(self):
        schema = Schema.from_domain_sizes([3])
        histogram = DenseNoisyHistogram(np.array([-5.0, 10.0, -1.0]))
        sample = source_as_dataset(histogram, schema, 50, rng=1)
        assert (sample.column(0) == 1).all()

    def test_bisection_sampler_recovers_point_mass(self):
        schema = Schema.from_domain_sizes([8, 8])
        data = Dataset(np.full((40, 2), 3), schema)
        sample = source_as_dataset(_ExactAnswerer(data), schema, 64, rng=2)
        assert sample.n_records == 64
        assert (sample.values == 3).all()

    def test_bisection_sampler_tracks_skewed_margin(self):
        schema = Schema.from_domain_sizes([8])
        rng = np.random.default_rng(3)
        values = rng.choice(8, size=(500, 1), p=[0.4, 0.2, 0.1, 0.1, 0.08, 0.06, 0.04, 0.02])
        data = Dataset(values, schema)
        sample = source_as_dataset(_ExactAnswerer(data), schema, 4000, rng=4)
        empirical = np.bincount(sample.column(0), minlength=8) / 4000
        true = np.bincount(data.column(0), minlength=8) / 500
        assert 0.5 * np.abs(empirical - true).sum() < 0.05

    def test_unanswerable_source_rejected(self):
        schema = Schema.from_domain_sizes([4])
        with pytest.raises(TypeError):
            source_as_dataset(object(), schema, 10)


class TestUtilityEvaluation:
    def test_ml_omitted_without_target(self):
        from repro.queries.range_query import random_workload
        from repro.queries.workloads import all_kway

        schema = Schema.from_domain_sizes([10, 8])
        rng = np.random.default_rng(0)
        data = Dataset(rng.integers(0, [10, 8], size=(300, 2)), schema)
        train, test = data, data
        evaluation = utility_evaluation(
            make_method("identity"),
            train,
            test,
            random_workload(schema, 5, rng=1),
            all_kway(schema, 1),
            epsilon=1.0,
            rng=2,
        )
        assert evaluation.ml is None
        assert evaluation.method == "identity"
        document = json.loads(json.dumps(evaluation.to_dict()))
        assert document["ml"] is None
