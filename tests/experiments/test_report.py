"""Tests for Markdown/CSV report generation."""

import csv

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.report import (
    figure_to_csv,
    figure_to_markdown,
    figures_to_markdown,
    write_report,
)


@pytest.fixture
def result():
    figure = FigureResult("fig5", "error vs k", {"n": 100})
    figure.add(1.0, "dpcopula", "relative_error", 0.5)
    figure.add(8.0, "dpcopula", "relative_error", 0.3)
    figure.add(1.0, "psd", "relative_error", 0.9)
    figure.add(1.0, "dpcopula", "seconds", 0.02)
    return figure


class TestMarkdown:
    def test_section_header(self, result):
        markdown = figure_to_markdown(result)
        assert markdown.startswith("### fig5 — error vs k")

    def test_parameters_rendered(self, result):
        assert "n=100" in figure_to_markdown(result)

    def test_one_table_per_metric(self, result):
        markdown = figure_to_markdown(result)
        assert "**relative_error**" in markdown
        assert "**seconds**" in markdown

    def test_missing_cells_rendered_as_dash(self, result):
        markdown = figure_to_markdown(result)
        assert "—" in markdown  # psd has no value at x = 8.0

    def test_combined_report(self, result):
        markdown = figures_to_markdown([result, result], title="Run 1")
        assert markdown.startswith("## Run 1")
        assert markdown.count("### fig5") == 2


class TestCSV:
    def test_long_format(self, result):
        rows = list(csv.reader(figure_to_csv(result).splitlines()))
        assert rows[0] == ["figure_id", "metric", "method", "x", "value"]
        assert len(rows) == 1 + len(result.points)

    def test_values_roundtrip(self, result):
        rows = list(csv.reader(figure_to_csv(result).splitlines()))
        assert rows[1] == ["fig5", "relative_error", "dpcopula", "1.0", "0.5"]


class TestWriteReport:
    def test_writes_markdown_and_csvs(self, result, tmp_path):
        markdown_path = tmp_path / "report.md"
        csv_dir = tmp_path / "csv"
        write_report([result], markdown_path, csv_dir=csv_dir)
        assert markdown_path.exists()
        assert (csv_dir / "fig5.csv").exists()

    def test_markdown_only(self, result, tmp_path):
        markdown_path = tmp_path / "report.md"
        write_report([result], markdown_path)
        assert "fig5" in markdown_path.read_text()
