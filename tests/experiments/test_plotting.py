"""Tests for terminal rendering of figure results."""

import numpy as np
import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.plotting import render_figure, sparkline


class TestSparkline:
    def test_monotone_series(self):
        chart = sparkline([1, 2, 3, 4])
        assert chart[0] == "▁" and chart[-1] == "█"
        assert list(chart) == sorted(chart, key="  ▁▂▃▄▅▆▇█".index)

    def test_constant_series_is_flat(self):
        chart = sparkline([5, 5, 5])
        assert len(set(chart)) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_nan_rendered_as_question_mark(self):
        chart = sparkline([1.0, float("nan"), 3.0])
        assert chart[1] == "?"

    def test_log_scale_compresses_decades(self):
        linear = sparkline([1, 10, 100, 1000])
        logarithmic = sparkline([1, 10, 100, 1000], log_scale=True)
        # On a log scale the steps are equal; linearly the first two
        # collapse to the bottom block.
        assert linear[0] == linear[1]
        assert logarithmic[0] != logarithmic[1]

    def test_length_matches_input(self):
        values = np.random.default_rng(0).uniform(0, 1, size=37)
        assert len(sparkline(values)) == 37


class TestRenderFigure:
    @pytest.fixture
    def result(self):
        figure = FigureResult("fig9", "error vs distribution")
        for x, value in [(0.1, 2.0), (0.5, 0.5), (1.0, 0.1)]:
            figure.add(x, "dpcopula", "relative_error", value)
            figure.add(x, "psd", "relative_error", value * 3)
        return figure

    def test_contains_title_and_methods(self, result):
        text = render_figure(result)
        assert "fig9" in text
        assert "dpcopula" in text and "psd" in text

    def test_contains_value_range(self, result):
        text = render_figure(result)
        assert "0.1" in text and "2" in text

    def test_log_scale_annotation_for_wide_ranges(self):
        figure = FigureResult("figX", "wide")
        for x, value in [(1, 0.001), (2, 100.0)]:
            figure.add(x, "m", "relative_error", value)
        assert "(log scale)" in render_figure(figure)

    def test_empty_figure(self):
        text = render_figure(FigureResult("figX", "empty"))
        assert "figX" in text
