"""Tests for the regenerated paper tables."""

from repro.experiments.tables import (
    all_tables,
    table2a_us_domain_sizes,
    table2b_brazil_domain_sizes,
    table3_experiment_parameters,
)


class TestTable2:
    def test_us_values(self):
        table = table2a_us_domain_sizes()
        for name, size in [
            ("age", "96"),
            ("income", "1020"),
            ("occupation", "511"),
            ("gender", "2"),
        ]:
            assert name in table and size in table

    def test_brazil_values(self):
        table = table2b_brazil_domain_sizes()
        for name, size in [
            ("age", "95"),
            ("education", "140"),
            ("working_hours", "95"),
            ("annual_income", "586"),
            ("years_residing", "31"),
        ]:
            assert name in table and size in table


class TestTable3:
    def test_defaults(self):
        table = table3_experiment_parameters()
        assert "50000" in table
        assert "1.0" in table
        assert "1000" in table

    def test_every_parameter_listed(self):
        table = table3_experiment_parameters()
        for parameter in ("n", "epsilon", "m", "s", "k", "A_i"):
            assert parameter in table


def test_all_tables_concatenates():
    combined = all_tables()
    assert "Table 2(a)" in combined
    assert "Table 2(b)" in combined
    assert "Table 3" in combined


def test_cli_tables_flag(capsys):
    from repro.experiments.cli import main

    assert main(["--tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
