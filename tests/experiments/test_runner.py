"""Tests for the experiment method registry and evaluation loop."""

import numpy as np
import pytest

from repro.data.dataset import Dataset, Schema
from repro.experiments.runner import (
    DPCopulaMethod,
    IdentityMethod,
    Method,
    PSDMethod,
    average_evaluation,
    dense_counts,
    make_method,
)
from repro.queries.range_query import random_workload


class TestDenseCounts:
    def test_counts_match_data(self, small_dataset):
        counts = dense_counts(small_dataset)
        assert counts.shape == (50, 40)
        assert counts.sum() == small_dataset.n_records

    def test_cell_level_agreement(self, small_dataset):
        counts = dense_counts(small_dataset)
        x0, y0 = small_dataset.values[0]
        expected = int(
            (
                (small_dataset.column(0) == x0) & (small_dataset.column(1) == y0)
            ).sum()
        )
        assert counts[x0, y0] == expected

    def test_rejects_oversized_domain(self):
        schema = Schema.from_domain_sizes([10_000, 10_000])
        data = Dataset(np.zeros((5, 2), dtype=int), schema)
        with pytest.raises(MemoryError):
            dense_counts(data, max_cells=10**6)


class TestMakeMethod:
    @pytest.mark.parametrize(
        "name",
        [
            "dpcopula-kendall",
            "dpcopula-mle",
            "dpcopula-hybrid",
            "psd",
            "fp",
            "privelet",
            "php",
            "identity",
            "dpcube",
            "ug",
            "ag",
        ],
    )
    def test_all_registry_names(self, name):
        method = make_method(name)
        assert isinstance(method, Method)
        assert method.name == name

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_method("k-anonymity")

    def test_kwargs_forwarded(self):
        method = make_method("psd", height=3)
        assert method.kwargs == {"height": 3}

    def test_margin_publisher_by_name(self):
        from repro.experiments.runner import margin_publisher_by_name
        from repro.histograms.hierarchical import HierarchicalPublisher

        publisher = margin_publisher_by_name("hierarchical")
        assert isinstance(publisher, HierarchicalPublisher)
        with pytest.raises(ValueError):
            margin_publisher_by_name("dct")

    def test_dpcopula_margin_publisher_string_resolved(self):
        from repro.experiments.runner import DPCopulaMethod
        from repro.histograms.identity import IdentityPublisher

        method = DPCopulaMethod("kendall", margin_publisher="identity")
        assert isinstance(method.margin_publisher, IdentityPublisher)

    def test_grid_methods_are_2d_only(self, small_dataset, synthetic_4d):
        for name in ("ug", "ag"):
            method = make_method(name)
            assert method.supports(small_dataset)
            assert not method.supports(synthetic_4d)


class TestMethodFit:
    def test_dpcopula_returns_dataset(self, small_dataset):
        source = DPCopulaMethod("kendall").fit(small_dataset, 1.0, rng=0)
        assert isinstance(source, Dataset)

    def test_psd_returns_answerer(self, small_dataset):
        source = PSDMethod(height=4).fit(small_dataset, 1.0, rng=1)
        assert hasattr(source, "range_count")

    def test_identity_clips_negative(self, small_dataset):
        source = IdentityMethod().fit(small_dataset, 0.5, rng=2)
        assert (source.counts >= 0).all()

    def test_dense_method_supports_check(self, small_dataset):
        method = IdentityMethod(max_cells=100)
        assert not method.supports(small_dataset)

    def test_dpcopula_rejects_bad_variant(self):
        with pytest.raises(ValueError):
            DPCopulaMethod("fourier")


class TestAverageEvaluation:
    def test_runs_and_averages(self, small_dataset):
        workload = random_workload(small_dataset.schema, 10, rng=3)
        timed = average_evaluation(
            make_method("identity"),
            small_dataset,
            workload,
            epsilon=1.0,
            n_runs=3,
            rng=4,
        )
        assert timed.evaluation.n_queries == 10
        assert timed.evaluation.mean_relative_error >= 0
        assert timed.fit_seconds > 0

    def test_more_budget_less_error(self, small_dataset):
        workload = random_workload(small_dataset.schema, 40, rng=5)
        low = average_evaluation(
            make_method("identity"), small_dataset, workload, 0.01, n_runs=3, rng=6
        )
        high = average_evaluation(
            make_method("identity"), small_dataset, workload, 10.0, n_runs=3, rng=6
        )
        assert high.evaluation.mean_relative_error < low.evaluation.mean_relative_error


class TestDenseClippingPolicy:
    def test_privelet_answers_unclipped(self, small_dataset):
        """Privelet's range accuracy relies on signed noise cancellation;
        the harness must not clip its reconstruction."""
        from repro.experiments.runner import PriveletMethod

        source = PriveletMethod().fit(small_dataset, 0.05, rng=0)
        assert (source.counts < 0).any()

    def test_identity_answers_clipped(self, small_dataset):
        from repro.experiments.runner import IdentityMethod

        source = IdentityMethod().fit(small_dataset, 0.05, rng=1)
        assert (source.counts >= 0).all()

    def test_default_margin_publisher_is_noisefirst(self):
        from repro.experiments.runner import DPCopulaMethod
        from repro.histograms.structurefirst import NoiseFirstPublisher

        method = DPCopulaMethod("kendall")
        assert isinstance(method.margin_publisher, NoiseFirstPublisher)
