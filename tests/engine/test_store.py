"""Shared plan stores: bitwise fidelity, generation retirement, lifecycle."""

import numpy as np
import pytest

from repro.engine import (
    MmapPlanStore,
    SharedMemoryPlanStore,
    build_plan_store,
    compile_plan,
)


class TestMmapStore:
    def test_published_plan_samples_bitwise(self, tmp_path, plan):
        store = MmapPlanStore(tmp_path / "plans")
        shared = store.publish(plan)
        local = plan.sample(300, np.random.default_rng(11))
        mapped = shared.sample(300, np.random.default_rng(11))
        np.testing.assert_array_equal(local.values, mapped.values)
        store.close()

    def test_publish_idempotent_per_generation(self, tmp_path, plan):
        store = MmapPlanStore(tmp_path / "plans")
        first = store.publish(plan)
        second = store.publish(plan)
        assert first is second  # served from the cache, not re-read
        store.close()

    def test_generation_bump_retires_stale_files(
        self, tmp_path, released_model, make_released_model
    ):
        store = MmapPlanStore(tmp_path / "plans")
        old = compile_plan(released_model, "m-1", generation=1)
        store.publish(old)
        assert (tmp_path / "plans" / "m-1" / "gen-1" / "manifest.json").exists()

        swapped = make_released_model(epsilon=2.0, seed=1)
        new = compile_plan(swapped, "m-1", generation=2)
        shared = store.publish(new)
        assert shared.generation == 2
        assert not (tmp_path / "plans" / "m-1" / "gen-1").exists()
        assert (tmp_path / "plans" / "m-1" / "gen-2" / "manifest.json").exists()
        # The new plan serves the new model's records.
        np.testing.assert_array_equal(
            shared.sample(50, np.random.default_rng(3)).values,
            new.sample(50, np.random.default_rng(3)).values,
        )

    def test_retire_drops_model(self, tmp_path, plan):
        store = MmapPlanStore(tmp_path / "plans")
        store.publish(plan)
        store.retire(plan.model_id)
        assert not (tmp_path / "plans" / plan.model_id).exists()

    def test_survives_process_restart(self, tmp_path, plan):
        """A fresh store over the same directory reuses published files."""
        MmapPlanStore(tmp_path / "plans").publish(plan)
        rebooted = MmapPlanStore(tmp_path / "plans")
        shared = rebooted.publish(plan)
        np.testing.assert_array_equal(
            shared.sample(40, np.random.default_rng(2)).values,
            plan.sample(40, np.random.default_rng(2)).values,
        )


class TestSharedMemoryStore:
    def test_published_plan_samples_bitwise(self, plan):
        store = SharedMemoryPlanStore(prefix="dpc-test-bitwise")
        try:
            shared = store.publish(plan)
            local = plan.sample(300, np.random.default_rng(11))
            segment = shared.sample(300, np.random.default_rng(11))
            np.testing.assert_array_equal(local.values, segment.values)
        finally:
            store.close()

    def test_attach_from_manifest(self, plan):
        """A sibling can map the segments by manifest alone."""
        store = SharedMemoryPlanStore(prefix="dpc-test-attach")
        try:
            store.publish(plan)
            manifest = store.manifest(plan.model_id)
            attached, handles = SharedMemoryPlanStore.attach(manifest)
            try:
                np.testing.assert_array_equal(
                    attached.sample(100, np.random.default_rng(4)).values,
                    plan.sample(100, np.random.default_rng(4)).values,
                )
            finally:
                for handle in handles:
                    handle.close()
        finally:
            store.close()

    def test_generation_bump_replaces_segments(
        self, released_model, make_released_model
    ):
        store = SharedMemoryPlanStore(prefix="dpc-test-swap")
        try:
            store.publish(compile_plan(released_model, "m-1", generation=1))
            swapped = compile_plan(
                make_released_model(epsilon=2.0, seed=1), "m-1", generation=2
            )
            shared = store.publish(swapped)
            assert shared.generation == 2
            assert store.manifest("m-1")["generation"] == 2
        finally:
            store.close()

    def test_manifest_unknown_model(self):
        store = SharedMemoryPlanStore(prefix="dpc-test-miss")
        try:
            with pytest.raises(KeyError):
                store.manifest("nope")
        finally:
            store.close()


class TestFactory:
    def test_modes(self, tmp_path):
        assert build_plan_store("off") is None
        mmap_store = build_plan_store("mmap", tmp_path / "plans")
        assert isinstance(mmap_store, MmapPlanStore)
        shm_store = build_plan_store("shm")
        assert isinstance(shm_store, SharedMemoryPlanStore)
        shm_store.close()

    def test_invalid_mode(self, tmp_path):
        with pytest.raises(ValueError, match="shared_store_mode"):
            build_plan_store("nfs", tmp_path)
        with pytest.raises(ValueError, match="directory"):
            build_plan_store("mmap")


# -- separate-process attachment ------------------------------------------
#
# The stores exist for pre-fork fleets, so the contract that matters is
# cross-*process*: a true child process (fork) attaches to a publication
# it did not create and samples bitwise identically.

def _mmap_attach_child(directory, model_id, n, seed, out_queue):
    import numpy as np

    from repro.engine import MmapPlanStore

    store = MmapPlanStore(directory)
    try:
        plan = store.load(model_id)
        data = plan.sample(n, np.random.default_rng(seed))
        out_queue.put((plan.generation, data.values.tobytes(), data.values.shape))
    finally:
        store.close()


def _shm_attach_child(manifest, n, seed, out_queue):
    import numpy as np

    from repro.engine import SharedMemoryPlanStore

    plan, segments = SharedMemoryPlanStore.attach(manifest)
    try:
        data = plan.sample(n, np.random.default_rng(seed))
        out_queue.put((plan.generation, data.values.tobytes(), data.values.shape))
    finally:
        for segment in segments:
            segment.close()


def _run_child(target, args, timeout=60):
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    out_queue = ctx.Queue()
    process = ctx.Process(target=target, args=(*args, out_queue))
    process.start()
    try:
        result = out_queue.get(timeout=timeout)
    finally:
        process.join(timeout=timeout)
        if process.is_alive():  # pragma: no cover - hung child
            process.terminate()
    assert process.exitcode == 0
    return result


class TestSeparateProcessAttach:
    def test_mmap_store_attaches_from_child_process(self, tmp_path, plan):
        directory = tmp_path / "plans"
        MmapPlanStore(directory).publish(plan)
        generation, raw, shape = _run_child(
            _mmap_attach_child, (directory, plan.model_id, 120, 77)
        )
        assert generation == plan.generation
        local = plan.sample(120, np.random.default_rng(77)).values
        child = np.frombuffer(raw, dtype=np.int64).reshape(shape)
        np.testing.assert_array_equal(child, local)

    def test_mmap_load_without_publication_raises(self, tmp_path):
        store = MmapPlanStore(tmp_path / "plans")
        try:
            with pytest.raises(KeyError):
                store.load("never-published")
        finally:
            store.close()

    def test_shm_store_attaches_from_child_process(self, plan):
        store = SharedMemoryPlanStore(prefix="dpc-test-xproc")
        try:
            store.publish(plan)
            manifest = store.manifest(plan.model_id)
            generation, raw, shape = _run_child(
                _shm_attach_child, (manifest, 90, 13)
            )
            assert generation == plan.generation
            local = plan.sample(90, np.random.default_rng(13)).values
            child = np.frombuffer(raw, dtype=np.int64).reshape(shape)
            np.testing.assert_array_equal(child, local)
        finally:
            store.close()
