"""Shared fixtures for the sampling-engine tests."""

from __future__ import annotations

import pytest

from repro.core.dpcopula import DPCopulaKendall
from repro.engine import compile_plan
from repro.io import ReleasedModel


@pytest.fixture
def make_released_model(small_dataset):
    """Factory for distinct releases of the 200-record conftest dataset."""

    def build(epsilon: float = 1.0, seed: int = 0) -> ReleasedModel:
        synthesizer = DPCopulaKendall(epsilon=epsilon, rng=seed)
        synthesizer.fit(small_dataset)
        return ReleasedModel.from_synthesizer(synthesizer)

    return build


@pytest.fixture
def released_model(make_released_model) -> ReleasedModel:
    return make_released_model()


@pytest.fixture
def plan(released_model):
    return compile_plan(released_model, "m-test", generation=1)
