"""Compiled sampler plans: bitwise fidelity to the uncompiled path."""

import numpy as np
import pytest

from repro.engine import SamplerPlan, compile_plan


class TestCompile:
    def test_metadata_carried(self, plan, released_model):
        assert plan.model_id == "m-test"
        assert plan.generation == 1
        assert plan.m == released_model.schema.dimensions
        assert plan.n_records == released_model.n_records
        assert plan.epsilon == released_model.epsilon

    def test_cholesky_reconstructs_correlation(self, plan, released_model):
        np.testing.assert_allclose(
            plan.cholesky @ plan.cholesky.T,
            released_model.correlation,
            atol=1e-8,
        )

    def test_dimension_mismatch_rejected(self, plan, released_model):
        with pytest.raises(ValueError, match="schema"):
            SamplerPlan(
                "m",
                1,
                np.eye(plan.m + 1),
                plan.inverter,
                released_model.schema,
                10,
                1.0,
            )


class TestSampleBitwise:
    def test_matches_released_model_sample(self, plan, released_model):
        """The compiled path must reproduce the uncompiled path exactly."""
        baseline = released_model.sample(500, rng=np.random.default_rng(42))
        compiled = plan.sample(500, np.random.default_rng(42))
        np.testing.assert_array_equal(compiled.values, baseline.values)
        assert compiled.schema == baseline.schema

    def test_chunked_equals_single_pass(self, plan):
        whole = plan.sample(301, np.random.default_rng(7))
        chunked = plan.sample(301, np.random.default_rng(7), chunk_size=64)
        np.testing.assert_array_equal(whole.values, chunked.values)

    def test_invalid_n_rejected(self, plan):
        with pytest.raises(ValueError, match="n must be"):
            plan.sample(0, np.random.default_rng(0))


class TestSampleBatch:
    def test_each_request_bitwise_equals_serial(self, plan):
        """Coalesced slices must be bitwise identical to serial draws."""
        sizes = [100, 1, 250, 37]
        batched = plan.sample_batch(
            [(n, np.random.default_rng(1000 + i)) for i, n in enumerate(sizes)]
        )
        for i, (n, result) in enumerate(zip(sizes, batched)):
            serial = plan.sample(n, np.random.default_rng(1000 + i))
            np.testing.assert_array_equal(result.values, serial.values)
            assert result.n_records == n

    def test_empty_batch(self, plan):
        assert plan.sample_batch([]) == []

    def test_slices_are_independent_copies(self, plan):
        """Per-request datasets must not alias the shared batch array."""
        first, second = plan.sample_batch(
            [(10, np.random.default_rng(1)), (10, np.random.default_rng(2))]
        )
        assert first.values.base is None or not np.shares_memory(
            first.values, second.values
        )


class TestPublication:
    def test_from_arrays_roundtrip_bitwise(self, plan):
        rebuilt = SamplerPlan.from_arrays(plan.arrays(), plan.metadata())
        assert rebuilt.model_id == plan.model_id
        assert rebuilt.generation == plan.generation
        original = plan.sample(200, np.random.default_rng(5))
        roundtrip = rebuilt.sample(200, np.random.default_rng(5))
        np.testing.assert_array_equal(original.values, roundtrip.values)

    def test_format_version_enforced(self, plan):
        metadata = plan.metadata()
        metadata["format_version"] = 999
        with pytest.raises(ValueError, match="format version"):
            SamplerPlan.from_arrays(plan.arrays(), metadata)

    def test_generation_tag_flows_through(self, released_model):
        plan = compile_plan(released_model, "m-x", generation=7)
        assert plan.generation == 7
        assert plan.metadata()["generation"] == 7
