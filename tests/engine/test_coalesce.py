"""Request coalescing: determinism under batching, overflow, deadlines."""

import threading

import numpy as np
import pytest

from repro.engine import EngineOverloadedError, RequestCoalescer
from repro.resilience.deadlines import Deadline, DeadlineExceeded, deadline_scope


class _BlockingPlan:
    """A stub plan whose batch execution parks until released."""

    model_id = "m-blocking"
    generation = 1

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.batches = []

    def sample_batch(self, requests):
        self.started.set()
        assert self.release.wait(timeout=30), "test forgot to release the plan"
        self.batches.append([n for n, _ in requests])
        return [f"result-{n}" for n, _ in requests]


class TestDeterminism:
    def test_concurrent_requests_bitwise_equal_serial(self, plan):
        """Same seed, same records — coalesced or not (the tentpole gate)."""
        coalescer = RequestCoalescer(window_seconds=0.02)
        seeds = list(range(12))
        expected = {
            seed: plan.sample(80, np.random.default_rng(seed)).values
            for seed in seeds
        }
        results = {}
        errors = []

        def worker(seed):
            try:
                results[seed] = coalescer.sample(
                    plan, 80, np.random.default_rng(seed)
                )
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in seeds]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert set(results) == set(seeds)
        for seed in seeds:
            np.testing.assert_array_equal(results[seed].values, expected[seed])

    def test_single_request_no_window(self, plan):
        """window=0: a lone request is served immediately, no batching wait."""
        coalescer = RequestCoalescer(window_seconds=0.0)
        result = coalescer.sample(plan, 50, np.random.default_rng(9))
        serial = plan.sample(50, np.random.default_rng(9))
        np.testing.assert_array_equal(result.values, serial.values)
        assert coalescer.pending() == 0


class TestBatching:
    def test_requests_coalesce_while_leader_blocked(self):
        """Arrivals during execution form the next batch (stub plan)."""
        stub = _BlockingPlan()
        coalescer = RequestCoalescer(window_seconds=0.0)
        rng = np.random.default_rng(0)

        leader = threading.Thread(
            target=lambda: coalescer.sample(stub, 1, rng)
        )
        leader.start()
        assert stub.started.wait(timeout=10)

        followers = [
            threading.Thread(target=lambda i=i: coalescer.sample(stub, 2 + i, rng))
            for i in range(3)
        ]
        for thread in followers:
            thread.start()
        # Wait until all three are parked behind the executing batch.
        for _ in range(1000):
            if coalescer.pending() == 3:
                break
            threading.Event().wait(0.005)
        assert coalescer.pending() == 3

        stub.release.set()
        leader.join(timeout=10)
        for thread in followers:
            thread.join(timeout=10)
        assert coalescer.pending() == 0
        # First batch was the lone leader; the parked followers formed
        # one coalesced batch after the hand-off.
        assert stub.batches[0] == [1]
        assert sorted(n for batch in stub.batches[1:] for n in batch) == [2, 3, 4]
        assert len(stub.batches) == 2

    def test_max_batch_records_splits_drain(self):
        stub = _BlockingPlan()
        stub.release.set()  # never block
        coalescer = RequestCoalescer(window_seconds=0.05, max_batch_records=100)
        rng = np.random.default_rng(0)
        threads = [
            threading.Thread(target=lambda: coalescer.sample(stub, 60, rng))
            for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert sorted(n for batch in stub.batches for n in batch) == [60, 60, 60]
        assert all(sum(batch) <= 100 for batch in stub.batches)


class TestOverflow:
    def test_queue_overflow_rejected_with_retry_hint(self):
        stub = _BlockingPlan()
        coalescer = RequestCoalescer(window_seconds=0.0, max_pending_requests=2)
        rng = np.random.default_rng(0)

        leader = threading.Thread(target=lambda: coalescer.sample(stub, 1, rng))
        leader.start()
        assert stub.started.wait(timeout=10)

        parked = [
            threading.Thread(target=lambda: coalescer.sample(stub, 1, rng))
            for _ in range(2)
        ]
        for thread in parked:
            thread.start()
        for _ in range(1000):
            if coalescer.pending() == 2:
                break
            threading.Event().wait(0.005)
        assert coalescer.pending() == 2

        with pytest.raises(EngineOverloadedError, match="overloaded") as excinfo:
            coalescer.sample(stub, 1, rng)
        assert excinfo.value.retry_after > 0

        stub.release.set()
        leader.join(timeout=10)
        for thread in parked:
            thread.join(timeout=10)

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            RequestCoalescer(window_seconds=-1)
        with pytest.raises(ValueError):
            RequestCoalescer(max_batch_records=0)
        with pytest.raises(ValueError):
            RequestCoalescer(max_pending_requests=0)


class TestDeadlines:
    def test_parked_follower_honors_deadline(self):
        """A follower whose budget lapses raises instead of waiting forever."""
        stub = _BlockingPlan()
        coalescer = RequestCoalescer(window_seconds=0.0)
        rng = np.random.default_rng(0)

        leader = threading.Thread(target=lambda: coalescer.sample(stub, 1, rng))
        leader.start()
        assert stub.started.wait(timeout=10)

        with pytest.raises(DeadlineExceeded):
            with deadline_scope(Deadline(0.05)):
                coalescer.sample(stub, 1, rng)
        # The abandoned follower withdrew from the queue.
        assert coalescer.pending() == 0

        stub.release.set()
        leader.join(timeout=10)


class TestFailureIsolation:
    def test_batch_failure_poisons_only_its_requests(self, plan):
        """A failing draw propagates to its requests; the key recovers."""

        class _FailingPlan:
            model_id = "m-fail"
            generation = 1

            def sample_batch(self, requests):
                raise RuntimeError("boom")

        coalescer = RequestCoalescer(window_seconds=0.0)
        with pytest.raises(RuntimeError, match="boom"):
            coalescer.sample(_FailingPlan(), 5, np.random.default_rng(0))
        # The coalescer is still serviceable for healthy plans.
        result = coalescer.sample(plan, 10, np.random.default_rng(3))
        np.testing.assert_array_equal(
            result.values, plan.sample(10, np.random.default_rng(3)).values
        )
        assert coalescer.pending() == 0
