"""The engine facade: seeding contract, store/coalescer composition."""

import numpy as np
import pytest

from repro.engine import (
    MmapPlanStore,
    RequestCoalescer,
    SamplingEngine,
    compile_plan,
)


@pytest.fixture
def engine(plan):
    return SamplingEngine({"m-test": plan}.__getitem__)


class TestSeedingContract:
    def test_seeded_matches_pre_engine_path(self, engine, released_model):
        """An explicit seed reproduces the historical serve response."""
        baseline = released_model.sample(200, rng=np.random.default_rng(42))
        served = engine.sample("m-test", 200, seed=42)
        np.testing.assert_array_equal(served.values, baseline.values)

    def test_seeded_is_stable_across_calls(self, engine):
        first = engine.sample("m-test", 100, seed=7)
        second = engine.sample("m-test", 100, seed=7)
        np.testing.assert_array_equal(first.values, second.values)

    def test_unseeded_requests_differ(self, engine):
        first = engine.sample("m-test", 100)
        second = engine.sample("m-test", 100)
        assert not np.array_equal(first.values, second.values)

    def test_default_n_is_model_size(self, engine, plan):
        assert engine.sample("m-test", seed=1).n_records == plan.n_records

    def test_unknown_model_raises_keyerror(self, engine):
        with pytest.raises(KeyError):
            engine.sample("nope", 10)


class TestComposition:
    def test_with_coalescer_seeded_still_bitwise(self, plan, released_model):
        engine = SamplingEngine(
            {"m-test": plan}.__getitem__,
            coalescer=RequestCoalescer(window_seconds=0.0),
        )
        baseline = released_model.sample(150, rng=np.random.default_rng(5))
        served = engine.sample("m-test", 150, seed=5)
        np.testing.assert_array_equal(served.values, baseline.values)
        assert engine.pending() == 0

    def test_with_store_seeded_still_bitwise(self, tmp_path, plan, released_model):
        engine = SamplingEngine(
            {"m-test": plan}.__getitem__,
            store=MmapPlanStore(tmp_path / "plans"),
        )
        baseline = released_model.sample(150, rng=np.random.default_rng(5))
        served = engine.sample("m-test", 150, seed=5)
        np.testing.assert_array_equal(served.values, baseline.values)
        engine.close()

    def test_store_follows_generation(self, tmp_path, released_model, make_released_model):
        """A provider that swaps generations flows through the store."""
        plans = {"m-1": compile_plan(released_model, "m-1", generation=1)}
        engine = SamplingEngine(
            plans.__getitem__, store=MmapPlanStore(tmp_path / "plans")
        )
        before = engine.sample("m-1", 60, seed=9)

        swapped = make_released_model(epsilon=2.0, seed=1)
        plans["m-1"] = compile_plan(swapped, "m-1", generation=2)
        after = engine.sample("m-1", 60, seed=9)

        np.testing.assert_array_equal(
            after.values, swapped.sample(60, rng=np.random.default_rng(9)).values
        )
        assert not np.array_equal(before.values, after.values)
        engine.close()
