"""Pre-fork fleet tests: SO_REUSEPORT serving, supervision, hot-swap.

Every fleet here runs real forked worker processes against real
sockets, so each test wraps its supervisor in the ``fleet_factory``
fixture's teardown (workers are non-daemon processes — an unjoined one
would hang the interpreter at exit).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time
import urllib.error
import urllib.request
from dataclasses import replace

import numpy as np
import pytest

from repro.core.dpcopula import DPCopulaKendall
from repro.io import ReleasedModel
from repro.service import (
    ModelRegistry,
    PreforkServer,
    ServiceConfig,
    SynthesisService,
    build_server,
    resolve_worker_count,
)
from repro.service.errors import QueueFullError
from repro.service.prefork import WORKERS_ENV_VAR


def _fit_release(dataset, seed: int = 0) -> ReleasedModel:
    synthesizer = DPCopulaKendall(epsilon=1.0, rng=seed)
    synthesizer.fit(dataset)
    return ReleasedModel.from_synthesizer(synthesizer)


def _request(port, method, path, body=None, timeout=30):
    """One HTTP round trip; returns (status, parsed body, headers dict)."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _sample(port, model_id, n, seed):
    status, body, headers = _request(
        port, "POST", f"/models/{model_id}/sample", {"n": n, "seed": seed}
    )
    return status, body, headers


@pytest.fixture
def fleet_factory(tmp_path):
    """Start fleets that are always stopped (joined) at test exit."""
    started = []

    def _start(workers, model=None, force_inherited_socket=False, **config_kw):
        config_kw.setdefault("shared_store_mode", "mmap")
        config = ServiceConfig(
            data_dir=tmp_path / "data",
            epsilon_cap=10.0,
            workers=workers,
            **config_kw,
        )
        config.ensure_layout()
        model_id = None
        if model is not None:
            registry = ModelRegistry(config.models_dir)
            model_id = registry.put(model, dataset_id="d1", method="kendall").model_id
        supervisor = PreforkServer(
            config, port=0, quiet=True, force_inherited_socket=force_inherited_socket
        )
        started.append(supervisor)
        supervisor.start(timeout=90)
        return supervisor, model_id

    yield _start
    for supervisor in started:
        supervisor.stop()


class TestResolveWorkerCount:
    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)

    def test_defaults_to_single_process(self):
        assert resolve_worker_count() == 1
        assert resolve_worker_count(None) == 1

    def test_explicit_value_beats_environment(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "7")
        assert resolve_worker_count(1) == 1

    def test_environment_override(self, monkeypatch):
        cores = os.cpu_count() or 1
        monkeypatch.setenv(WORKERS_ENV_VAR, str(cores))
        assert resolve_worker_count() == cores

    def test_environment_must_be_integer(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        with pytest.raises(ValueError, match="must be an integer"):
            resolve_worker_count()

    @pytest.mark.parametrize("bad", [0, -1, -8])
    def test_rejects_counts_below_one(self, bad):
        with pytest.raises(ValueError, match="must be >= 1"):
            resolve_worker_count(bad)

    def test_rejects_sub_one_environment_value(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "0")
        with pytest.raises(ValueError, match="DPCOPULA_WORKERS must be >= 1"):
            resolve_worker_count()

    def test_warns_when_workers_exceed_cores(self):
        over = (os.cpu_count() or 1) + 1
        with pytest.warns(RuntimeWarning, match="exceeds"):
            assert resolve_worker_count(over) == over


class TestBuildServerSocketModes:
    def test_reuse_port_and_inherited_socket_are_exclusive(self, service):
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            with pytest.raises(ValueError, match="not both"):
                build_server(service, reuse_port=True, listen_socket=placeholder)
        finally:
            placeholder.close()

    def test_worker_label_header(self, service):
        server = build_server(service, worker_label="7")
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            _, _, headers = _request(server.server_address[1], "GET", "/health")
            assert headers["X-DPCopula-Worker"] == "7"
        finally:
            server.shutdown()
            server.server_close()


class TestFleetServing:
    def test_bitwise_sampling_metrics_and_health(
        self, fleet_factory, small_dataset
    ):
        model = _fit_release(small_dataset)
        supervisor, model_id = fleet_factory(2, model=model)
        serial = model.sample(50, rng=np.random.default_rng(42)).values

        workers_seen = set()
        for _ in range(40):
            status, body, headers = _sample(supervisor.port, model_id, 50, 42)
            assert status == 200
            np.testing.assert_array_equal(
                np.asarray(body["records"], dtype=np.int64), serial
            )
            workers_seen.add(headers["X-DPCopula-Worker"])
        # SO_REUSEPORT hashes each new connection; 40 fresh connections
        # land on both of 2 workers with overwhelming probability.
        assert workers_seen == {"0", "1"}

        status, body, _ = _request(supervisor.port, "GET", "/healthz")
        assert status == 200 and body["healthy"]

        # Let both workers' metric flushers write post-traffic snapshots,
        # then check the aggregated view labels series per worker.
        time.sleep(1.5)
        request = urllib.request.Request(
            f"http://127.0.0.1:{supervisor.port}/metrics",
            headers={"Accept": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            snapshot = json.loads(response.read())
        labels = {
            series["labels"].get("worker")
            for metric in snapshot.values()
            for series in metric.get("series", [])
        }
        assert {"0", "1"} <= labels

        with urllib.request.urlopen(
            f"http://127.0.0.1:{supervisor.port}/metrics", timeout=30
        ) as response:
            text = response.read().decode()
        assert 'worker="0"' in text and 'worker="1"' in text

    def test_fit_submitted_to_any_worker_completes(
        self, fleet_factory, csv_text, small_dataset
    ):
        model = _fit_release(small_dataset)
        supervisor, model_id = fleet_factory(2, model=model)
        status, body, _ = _request(
            supervisor.port, "POST", "/datasets", {"dataset_id": "up1", "csv": csv_text}
        )
        assert status == 201, body
        # Two submissions: with kernel connection balancing at least one
        # will typically land on the follower and ride the journal-as-
        # queue path; both must complete regardless of landing worker.
        job_ids = []
        for seed in (11, 12):
            status, body, _ = _request(
                supervisor.port,
                "POST",
                "/fits",
                {"dataset_id": "up1", "epsilon": 0.5, "seed": seed},
            )
            assert status == 202, body
            job_ids.append(body["job_id"])
        deadline = time.monotonic() + 120
        states = {}
        while time.monotonic() < deadline:
            states = {
                job_id: _request(supervisor.port, "GET", f"/fits/{job_id}")[1]
                for job_id in job_ids
            }
            if all(v["status"] in {"done", "failed", "cancelled"} for v in states.values()):
                break
            time.sleep(0.2)
        assert all(v["status"] == "done" for v in states.values()), states
        for view in states.values():
            status, info, _ = _request(
                supervisor.port, "GET", f"/models/{view['model_id']}"
            )
            assert status == 200 and info["model_id"] == view["model_id"]

    def test_inherited_listener_fallback_serves_bitwise(
        self, fleet_factory, small_dataset
    ):
        model = _fit_release(small_dataset)
        supervisor, model_id = fleet_factory(
            2, model=model, force_inherited_socket=True
        )
        assert supervisor.reuse_port is False
        serial = model.sample(30, rng=np.random.default_rng(5)).values
        for _ in range(10):
            status, body, headers = _sample(supervisor.port, model_id, 30, 5)
            assert status == 200
            np.testing.assert_array_equal(
                np.asarray(body["records"], dtype=np.int64), serial
            )
            assert headers["X-DPCopula-Worker"] in {"0", "1"}


class TestSupervision:
    def test_sigterm_drain_exits_cleanly(self, fleet_factory, small_dataset):
        model = _fit_release(small_dataset)
        supervisor, model_id = fleet_factory(2, model=model)
        status, _, _ = _sample(supervisor.port, model_id, 10, 1)
        assert status == 200
        processes = list(supervisor._processes.values())
        supervisor.stop()
        assert [process.exitcode for process in processes] == [0, 0]

    def test_sigkill_respawn_preserves_shared_generation(
        self, fleet_factory, small_dataset
    ):
        model = _fit_release(small_dataset)
        supervisor, model_id = fleet_factory(2, model=model)
        serial = model.sample(25, rng=np.random.default_rng(9)).values
        config = supervisor.config

        # Warm both workers so the mmap store holds a published plan.
        for _ in range(8):
            assert _sample(supervisor.port, model_id, 25, 9)[0] == 200
        manifest = config.plans_dir / model_id / "gen-1" / "manifest.json"
        assert manifest.exists()

        victim = supervisor.alive_workers()[1]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if supervisor.reap_and_respawn():
                break
            time.sleep(0.05)
        supervisor.wait_ready(timeout=30)
        assert supervisor.restarts.get(1) == 1
        assert supervisor.alive_workers()[1] != victim

        # The respawned worker attaches to the same durable generation:
        # nothing was republished, and samples stay bitwise identical.
        registry = ModelRegistry(config.models_dir)
        assert registry.generation(model_id) == 1
        assert manifest.exists()
        for _ in range(10):
            status, body, _ = _sample(supervisor.port, model_id, 25, 9)
            assert status == 200
            np.testing.assert_array_equal(
                np.asarray(body["records"], dtype=np.int64), serial
            )


class TestHotSwapUnderTraffic:
    def test_no_request_observes_a_torn_plan(self, fleet_factory, small_dataset):
        model_a = _fit_release(small_dataset, seed=0)
        model_b = _fit_release(small_dataset, seed=1)
        serial_a = model_a.sample(40, rng=np.random.default_rng(7)).values
        serial_b = model_b.sample(40, rng=np.random.default_rng(7)).values
        assert not np.array_equal(serial_a, serial_b)

        supervisor, model_id = fleet_factory(4, model=model_a)
        config = supervisor.config
        stop = threading.Event()
        results, failures = [], []
        lock = threading.Lock()

        def hammer():
            while not stop.is_set():
                try:
                    status, body, _ = _sample(supervisor.port, model_id, 40, 7)
                except Exception as exc:  # noqa: BLE001 - collected below
                    with lock:
                        failures.append(repr(exc))
                    return
                with lock:
                    if status != 200:
                        failures.append(body)
                    else:
                        results.append(
                            np.asarray(body["records"], dtype=np.int64)
                        )

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for thread in threads:
            thread.start()
        try:
            time.sleep(0.4)
            ModelRegistry(config.models_dir).replace(model_id, model_b)
            # Keep traffic flowing until the fleet demonstrably serves
            # the new generation (sibling workers watch the sidecar).
            deadline = time.monotonic() + 30
            swapped = False
            while time.monotonic() < deadline and not swapped:
                time.sleep(0.1)
                with lock:
                    swapped = any(
                        np.array_equal(arr, serial_b) for arr in results[-24:]
                    )
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)

        assert not failures, failures[:3]
        assert results
        # Every response is exactly the old or the new generation's
        # bitwise output — a torn plan (mixed generations) matches neither.
        old = sum(1 for arr in results if np.array_equal(arr, serial_a))
        new = sum(1 for arr in results if np.array_equal(arr, serial_b))
        assert old + new == len(results)
        assert new >= 1
        assert ModelRegistry(config.models_dir).generation(model_id) == 2


class TestFollowerService:
    """Follower-worker semantics, exercised in-process (no forks)."""

    def _configs(self, tmp_path, **kw):
        owner = ServiceConfig(
            data_dir=tmp_path / "data",
            epsilon_cap=10.0,
            workers=2,
            worker_index=0,
            shared_store_mode="mmap",
            **kw,
        )
        return owner, replace(owner, worker_index=1)

    def test_follower_journals_submission_owner_adopts(
        self, tmp_path, csv_text
    ):
        owner_cfg, follower_cfg = self._configs(tmp_path)
        follower = SynthesisService(follower_cfg)
        try:
            assert follower.worker is None
            follower.upload_dataset("d1", csv_text)
            view = follower.submit_fit(
                {"dataset_id": "d1", "epsilon": 0.5, "seed": 3}
            )
            assert view["status"] == "queued"
            # Any worker answers for any job via the durable journal.
            assert follower.job_status(view["job_id"])["status"] == "queued"
            assert any(
                v["job_id"] == view["job_id"] for v in follower.list_jobs()
            )
            owner = SynthesisService(owner_cfg)
            try:
                deadline = time.monotonic() + 120
                state = "queued"
                while time.monotonic() < deadline:
                    state = owner.job_status(view["job_id"])["status"]
                    if state in {"done", "failed", "cancelled"}:
                        break
                    time.sleep(0.1)
                assert state == "done"
                model_id = owner.job_status(view["job_id"])["model_id"]
                # The follower serves the owner-fitted model.
                out = follower.sample(model_id, n=20, seed=4)
                assert out["n_records"] == 20
            finally:
                owner.close()
        finally:
            follower.close()

    def test_follower_enforces_queue_bound(self, tmp_path, csv_text):
        _, follower_cfg = self._configs(tmp_path, max_queued_fits=1)
        follower = SynthesisService(follower_cfg)
        try:
            follower.upload_dataset("d1", csv_text)
            follower.submit_fit({"dataset_id": "d1", "epsilon": 0.5, "seed": 1})
            with pytest.raises(QueueFullError):
                follower.submit_fit(
                    {"dataset_id": "d1", "epsilon": 0.5, "seed": 2}
                )
        finally:
            follower.close()

    def test_follower_cancels_queued_job_in_journal(self, tmp_path, csv_text):
        _, follower_cfg = self._configs(tmp_path)
        follower = SynthesisService(follower_cfg)
        try:
            follower.upload_dataset("d1", csv_text)
            view = follower.submit_fit(
                {"dataset_id": "d1", "epsilon": 0.5, "seed": 5}
            )
            cancelled = follower.cancel_job(view["job_id"])
            assert cancelled["status"] == "cancelled"
            assert follower.job_status(view["job_id"])["status"] == "cancelled"
        finally:
            follower.close()

    def test_follower_healthz_reports_healthy(self, tmp_path):
        _, follower_cfg = self._configs(tmp_path)
        follower = SynthesisService(follower_cfg)
        try:
            document = follower.healthz()
            assert document["healthy"]
            assert document["checks"]["fit_worker_alive"] is True
            assert document["queue_depth"] == 0
        finally:
            follower.close()


class TestStaleSnapshotPrune:
    def test_respawn_discards_dead_workers_snapshot(
        self, fleet_factory, small_dataset
    ):
        model = _fit_release(small_dataset)
        supervisor, model_id = fleet_factory(2, model=model)
        config = supervisor.config
        assert _sample(supervisor.port, model_id, 10, 1)[0] == 200

        victim = supervisor.alive_workers()[1]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if not _pid_alive(victim):
                break
            time.sleep(0.05)
        # The dead process's last flush is still on disk — plant a
        # recognizable stale document in its place.
        stale_path = config.metrics_dir / "worker-1.json"
        stale_path.write_text(
            json.dumps({"worker": 1, "pid": -1, "written_at": 0.0, "metrics": {}})
        )

        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if supervisor.reap_and_respawn():
                break
            time.sleep(0.05)
        # The supervisor pruned the stale snapshot before forking the
        # replacement: whatever is on disk now came from the new pid.
        if stale_path.exists():
            assert json.loads(stale_path.read_text())["pid"] != -1
        supervisor.wait_ready(timeout=30)

        # Aggregated /metrics never mixes in the stale counters: the
        # worker-1 series all come from the respawned process.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if stale_path.exists():
                assert json.loads(stale_path.read_text())["pid"] != -1
                break
            time.sleep(0.05)
        else:
            pytest.fail("respawned worker never flushed a fresh snapshot")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


class TestFleetObservatory:
    def test_probe_detects_injected_generation_drift(
        self, fleet_factory, small_dataset
    ):
        model_a = _fit_release(small_dataset, seed=0)
        supervisor, model_id = fleet_factory(
            2,
            model=model_a,
            probe_interval_seconds=0.25,
            probe_sample_size=64,
            probe_drift_threshold=1e-9,
        )
        config = supervisor.config

        # The fit-owner worker's probe loop publishes its first cycle.
        probes_path = config.observatory_dir / "probes.json"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if probes_path.exists():
                break
            time.sleep(0.1)
        else:
            pytest.fail("probe loop never published probes.json")

        # Any worker serves the shared observatory files.
        status, body, _ = _request(supervisor.port, "GET", "/debug/observatory")
        assert status == 200
        assert body["budget"]["epsilon_cap"] == 10.0

        # Inject drift: hot-swap the model from outside the fleet, the
        # way an operator-driven re-release would.
        synthesizer = DPCopulaKendall(epsilon=2.0, rng=1)
        synthesizer.fit(small_dataset)
        ModelRegistry(config.models_dir).replace(
            model_id, ReleasedModel.from_synthesizer(synthesizer)
        )

        events = []
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            status, body, _ = _request(
                supervisor.port, "GET", "/debug/observatory"
            )
            events = [
                e
                for e in body.get("drift_events", [])
                if e["model_id"] == model_id
            ]
            if events:
                break
            time.sleep(0.2)
        assert events, "generation swap was never reported as drift"
        assert all(e["from_generation"] == 1 for e in events)
        assert all(e["to_generation"] == 2 for e in events)

        # The probe consumed zero ε: no fits ran, so the ledger that
        # backs /budget shows no spend for the pre-registered model.
        status, body, _ = _request(supervisor.port, "GET", "/budget")
        assert status == 200
        assert all(d["epsilon_spent"] == 0.0 for d in body["datasets"])
