"""Shared fixtures for the synthesis-service tests."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.dpcopula import DPCopulaKendall
from repro.io import ReleasedModel
from repro.service import ServiceConfig, SynthesisService, build_server


@pytest.fixture
def csv_text(rng) -> str:
    """A 300-record correlated 2-attribute dataset as CSV text."""
    latent = rng.multivariate_normal([0, 0], [[1, 0.6], [0.6, 1]], size=300)
    a = np.clip(((latent[:, 0] + 3) / 6 * 60).astype(int), 0, 59)
    b = np.clip(((latent[:, 1] + 3) / 6 * 80).astype(int), 0, 79)
    return "a[60],b[80]\n" + "\n".join(f"{x},{y}" for x, y in zip(a, b)) + "\n"


@pytest.fixture
def released_model(small_dataset) -> ReleasedModel:
    """A quick fitted release of the 200-record conftest dataset."""
    synthesizer = DPCopulaKendall(epsilon=1.0, rng=0)
    synthesizer.fit(small_dataset)
    return ReleasedModel.from_synthesizer(synthesizer)


@pytest.fixture
def service(tmp_path):
    """A SynthesisService over a fresh tmp data dir (ε cap 3.0)."""
    svc = SynthesisService(ServiceConfig(data_dir=tmp_path / "data", epsilon_cap=3.0))
    yield svc
    svc.close()


class ServiceClient:
    """Minimal JSON client for a running synthesis server."""

    def __init__(self, port: int):
        self.base = f"http://127.0.0.1:{port}"

    def request(self, method: str, path: str, body=None, headers=None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def get_raw(self, path: str, headers=None):
        """GET without JSON-decoding; returns (status, text, content_type)."""
        request = urllib.request.Request(
            self.base + path, method="GET", headers=headers or {}
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return (
                    response.status,
                    response.read().decode("utf-8"),
                    response.headers.get("Content-Type", ""),
                )
        except urllib.error.HTTPError as error:
            return (
                error.code,
                error.read().decode("utf-8"),
                error.headers.get("Content-Type", ""),
            )

    def get(self, path: str, headers=None):
        return self.request("GET", path, headers=headers)

    def post(self, path: str, body=None):
        return self.request("POST", path, body if body is not None else {})


@pytest.fixture
def http_service(service):
    """The service bound to an ephemeral port, served from a thread."""
    server = build_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.server_address[1])
    yield service, client
    server.shutdown()
    server.server_close()
