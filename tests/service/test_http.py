"""End-to-end and concurrency tests for the HTTP synthesis API."""

import concurrent.futures
import json
import threading
import time

import numpy as np
import pytest

from repro.service import ServiceConfig, SynthesisService, build_server

from tests.service.conftest import ServiceClient


def poll_job(client, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, job = client.get(f"/fits/{job_id}")
        assert status == 200
        if job["status"] in ("done", "failed"):
            return job
        time.sleep(0.05)
    raise TimeoutError(f"job {job_id} did not finish")


class TestRouting:
    def test_health(self, http_service):
        _, client = http_service
        status, body = client.get("/health")
        assert status == 200
        assert body["status"] == "ok"

    def test_unknown_route_404(self, http_service):
        _, client = http_service
        status, body = client.get("/nope")
        assert status == 404
        assert "error" in body

    def test_wrong_method_405(self, http_service):
        _, client = http_service
        status, _ = client.post("/health")
        assert status == 405

    def test_unknown_model_404(self, http_service):
        _, client = http_service
        status, _ = client.post("/models/missing/sample", {"n": 10})
        assert status == 404

    def test_malformed_json_400(self, http_service):
        service, client = http_service
        import urllib.request

        request = urllib.request.Request(
            client.base + "/fits",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_hybrid_fit_rejected_400(self, http_service, csv_text):
        _, client = http_service
        client.post("/datasets", {"dataset_id": "d", "csv": csv_text})
        status, body = client.post(
            "/fits", {"dataset_id": "d", "method": "hybrid", "epsilon": 1.0}
        )
        assert status == 400
        assert "hybrid" in body["error"]


class TestEndToEnd:
    def test_full_lifecycle_with_restart(self, tmp_path, csv_text):
        """The acceptance scenario: upload → fit → poll → sample → restart."""
        data_dir = tmp_path / "data"
        service = SynthesisService(ServiceConfig(data_dir=data_dir, epsilon_cap=3.0))
        server = build_server(service)
        port = server.server_address[1]
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = ServiceClient(port)
        try:
            status, summary = client.post(
                "/datasets", {"dataset_id": "adult", "csv": csv_text}
            )
            assert status == 201
            assert summary["n_records"] == 300

            status, job = client.post(
                "/fits",
                {"dataset_id": "adult", "method": "kendall", "epsilon": 1.0,
                 "seed": 7},
            )
            assert status == 202
            job = poll_job(client, job["job_id"])
            assert job["status"] == "done", job["error"]
            model_id = job["model_id"]

            status, sample = client.post(
                f"/models/{model_id}/sample", {"n": 1000, "seed": 42}
            )
            assert status == 200
            assert sample["n_records"] == 1000
            values = np.asarray(sample["records"])
            assert values.shape == (1000, 2)
            assert values[:, 0].min() >= 0 and values[:, 0].max() < 60
            assert values[:, 1].min() >= 0 and values[:, 1].max() < 80

            status, budget = client.get("/datasets/adult/budget")
            assert status == 200
            assert budget["epsilon_spent"] == pytest.approx(1.0)
            assert f"fit:kendall:{job['job_id']}" in [
                charge["label"] for charge in budget["charges"]
            ]
            ledger_lines = (data_dir / "ledger.jsonl").read_text().splitlines()
            assert json.loads(ledger_lines[0])["epsilon"] == 1.0
        finally:
            server.shutdown()
            server.server_close()
            service.close()

        # Restart over the same data dir: the model is served without
        # refitting and the accountant still knows the spend.
        rebooted = SynthesisService(ServiceConfig(data_dir=data_dir, epsilon_cap=3.0))
        server2 = build_server(rebooted)
        threading.Thread(target=server2.serve_forever, daemon=True).start()
        client2 = ServiceClient(server2.server_address[1])
        try:
            status, models = client2.get("/models")
            assert status == 200
            assert [m["model_id"] for m in models["models"]] == [model_id]
            # Job history is durable: the finished job is still listed
            # (from the journal), done, and was not refitted.
            status, jobs = client2.get("/fits")
            assert [j["status"] for j in jobs["jobs"]] == ["done"]

            status, sample = client2.post(
                f"/models/{model_id}/sample", {"n": 50, "seed": 5}
            )
            assert status == 200
            assert sample["n_records"] == 50

            status, budget = client2.get("/datasets/adult/budget")
            assert budget["epsilon_spent"] == pytest.approx(1.0)
            assert budget["epsilon_remaining"] == pytest.approx(2.0)
        finally:
            server2.shutdown()
            server2.server_close()
            rebooted.close()

    def test_budget_cap_refuses_second_fit(self, http_service, csv_text):
        service, client = http_service  # ε cap 3.0
        client.post("/datasets", {"dataset_id": "d", "csv": csv_text})
        status, job = client.post("/fits", {"dataset_id": "d", "epsilon": 2.0})
        assert status == 202
        assert poll_job(client, job["job_id"])["status"] == "done"
        status, body = client.post("/fits", {"dataset_id": "d", "epsilon": 2.0})
        assert status == 409
        assert "cap" in body["error"]


class TestConcurrentSampling:
    def test_hammer_sample_endpoint(self, http_service, csv_text):
        """≥8 threads, distinct seeds: independent draws, no corruption."""
        _, client = http_service
        client.post("/datasets", {"dataset_id": "d", "csv": csv_text})
        _, job = client.post(
            "/fits", {"dataset_id": "d", "epsilon": 1.0, "seed": 0}
        )
        job = poll_job(client, job["job_id"])
        assert job["status"] == "done", job["error"]
        model_id = job["model_id"]

        n_threads, n_requests = 8, 48

        def draw(i):
            status, body = client.post(
                f"/models/{model_id}/sample", {"n": 120, "seed": i}
            )
            assert status == 200, body
            return np.asarray(body["records"])

        with concurrent.futures.ThreadPoolExecutor(n_threads) as pool:
            results = list(pool.map(draw, range(n_requests)))

        # Every response is well-formed and within the schema's domains.
        for values in results:
            assert values.shape == (120, 2)
            assert values[:, 0].min() >= 0 and values[:, 0].max() < 60
            assert values[:, 1].min() >= 0 and values[:, 1].max() < 80
        # Distinct seeds give independent (non-identical) draws.
        distinct = {values.tobytes() for values in results}
        assert len(distinct) == n_requests

    def test_same_seed_is_deterministic_under_concurrency(
        self, http_service, csv_text
    ):
        """Same-seed requests agree even when raced: no shared-RNG state."""
        _, client = http_service
        client.post("/datasets", {"dataset_id": "d", "csv": csv_text})
        _, job = client.post("/fits", {"dataset_id": "d", "epsilon": 1.0, "seed": 0})
        job = poll_job(client, job["job_id"])
        assert job["status"] == "done", job["error"]
        model_id = job["model_id"]

        def draw(_):
            status, body = client.post(
                f"/models/{model_id}/sample", {"n": 200, "seed": 1234}
            )
            assert status == 200, body
            return np.asarray(body["records"])

        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            results = list(pool.map(draw, range(16)))
        reference = results[0]
        for values in results[1:]:
            np.testing.assert_array_equal(values, reference)
