"""Tests for the durable cross-restart privacy accountant."""

import json

import pytest

from repro.dp.budget import BudgetExhaustedError
from repro.service.accountant import PrivacyAccountant


@pytest.fixture
def ledger_path(tmp_path):
    return tmp_path / "ledger.jsonl"


class TestCharging:
    def test_charges_accumulate(self, ledger_path):
        accountant = PrivacyAccountant(ledger_path, epsilon_cap=2.0)
        accountant.charge("adult", 0.5, label="fit:kendall:j1")
        accountant.charge("adult", 0.75, label="fit:mle:j2")
        assert accountant.spent("adult") == pytest.approx(1.25)
        assert accountant.remaining("adult") == pytest.approx(0.75)

    def test_datasets_are_isolated(self, ledger_path):
        accountant = PrivacyAccountant(ledger_path, epsilon_cap=1.0)
        accountant.charge("a", 1.0)
        assert accountant.remaining("a") == pytest.approx(0.0)
        assert accountant.remaining("b") == pytest.approx(1.0)
        accountant.charge("b", 0.5)

    def test_overdraw_rejected_and_not_journaled(self, ledger_path):
        accountant = PrivacyAccountant(ledger_path, epsilon_cap=2.0)
        accountant.charge("adult", 1.5)
        with pytest.raises(BudgetExhaustedError):
            accountant.charge("adult", 1.0)
        # The refused charge must leave no trace in memory or on disk.
        assert accountant.spent("adult") == pytest.approx(1.5)
        lines = ledger_path.read_text().splitlines()
        assert len(lines) == 1

    def test_rejects_nonpositive_epsilon(self, ledger_path):
        accountant = PrivacyAccountant(ledger_path, epsilon_cap=1.0)
        with pytest.raises(ValueError):
            accountant.charge("adult", 0.0)
        with pytest.raises(ValueError):
            accountant.charge("adult", -0.5)


class TestRestartSurvival:
    def test_two_fits_exceeding_cap_across_restart(self, ledger_path):
        """The ISSUE's satellite scenario: cap enforced over the ledger file."""
        first = PrivacyAccountant(ledger_path, epsilon_cap=2.0)
        first.charge("adult", 1.5, label="fit:kendall:j1")

        # Simulated restart: a brand-new accountant over the same ledger.
        rebooted = PrivacyAccountant(ledger_path, epsilon_cap=2.0)
        assert rebooted.spent("adult") == pytest.approx(1.5)
        with pytest.raises(BudgetExhaustedError):
            rebooted.charge("adult", 1.0, label="fit:kendall:j2")
        rebooted.charge("adult", 0.5, label="fit:kendall:j3")
        assert rebooted.remaining("adult") == pytest.approx(0.0)

    def test_entries_round_trip(self, ledger_path):
        first = PrivacyAccountant(ledger_path, epsilon_cap=5.0)
        first.charge("a", 1.0, label="fit:kendall:j1")
        first.charge("b", 2.0, label="fit:mle:j2")
        rebooted = PrivacyAccountant(ledger_path, epsilon_cap=5.0)
        entries = rebooted.entries()
        assert [(e["dataset"], e["epsilon"]) for e in entries] == [
            ("a", 1.0),
            ("b", 2.0),
        ]
        assert rebooted.entries("a")[0]["label"] == "fit:kendall:j1"

    def test_lowered_cap_blocks_everything(self, ledger_path):
        generous = PrivacyAccountant(ledger_path, epsilon_cap=10.0)
        generous.charge("adult", 4.0)
        # An operator tightening the cap below the historic spend must
        # not crash the service — it just refuses all further fits.
        strict = PrivacyAccountant(ledger_path, epsilon_cap=2.0)
        assert strict.spent("adult") == pytest.approx(4.0)
        assert strict.remaining("adult") == 0.0
        with pytest.raises(BudgetExhaustedError):
            strict.charge("adult", 0.1)

    def test_corrupt_ledger_refuses_to_start(self, ledger_path):
        ledger_path.write_text('{"dataset": "a", "epsilon": 1.0}\nnot json\n')
        with pytest.raises(ValueError, match="corrupt at line 2"):
            PrivacyAccountant(ledger_path, epsilon_cap=1.0)

    def test_replay_deduplicates_entries_by_key(self, ledger_path):
        # A retried append whose first attempt did reach disk (fsync
        # error after a successful write) journals the same key twice;
        # replay must apply the same dedup rule as charge().
        entry = '{"dataset": "adult", "epsilon": 0.5, "key": "fit:j1"}\n'
        ledger_path.write_text(entry + entry)
        accountant = PrivacyAccountant(ledger_path, epsilon_cap=2.0)
        assert accountant.spent("adult") == pytest.approx(0.5)
        assert len(accountant.entries("adult")) == 1
        # Unkeyed entries are never deduplicated: they carry no retry
        # provenance, so identical lines are distinct historic spends.
        plain = '{"dataset": "b", "epsilon": 0.25}\n'
        ledger_path.write_text(plain + plain)
        accountant = PrivacyAccountant(ledger_path, epsilon_cap=2.0)
        assert accountant.spent("b") == pytest.approx(0.5)


class TestTornTail:
    def test_torn_tail_dropped_and_survives_append_plus_restart(
        self, ledger_path
    ):
        # A crash mid-append leaves a truncated fragment with no
        # trailing newline.  Replay must drop it AND repair the file,
        # so the next append starts on a fresh line — otherwise the
        # second restart finds one merged unparseable line and the
        # service can never start again.
        complete = '{"dataset": "adult", "epsilon": 0.5, "key": "fit:j1"}\n'
        ledger_path.write_text(complete + '{"dataset": "adult", "eps')
        recovered = PrivacyAccountant(ledger_path, epsilon_cap=2.0)
        assert recovered.spent("adult") == pytest.approx(0.5)
        text = ledger_path.read_text()
        assert text == complete  # fragment truncated away on disk
        recovered.charge("adult", 0.25, label="fit:kendall:j2", key="fit:j2")
        # The second restart — the one the unrepaired file would break.
        rebooted = PrivacyAccountant(ledger_path, epsilon_cap=2.0)
        assert rebooted.spent("adult") == pytest.approx(0.75)

    def test_parseable_torn_tail_is_counted_and_newline_terminated(
        self, ledger_path
    ):
        # The append can die between writing the JSON and its newline:
        # the tail parses as a complete entry and must count, but the
        # file still needs the newline before further appends.
        ledger_path.write_text(
            '{"dataset": "adult", "epsilon": 0.5, "key": "fit:j1"}'
        )
        recovered = PrivacyAccountant(ledger_path, epsilon_cap=2.0)
        assert recovered.spent("adult") == pytest.approx(0.5)
        assert ledger_path.read_text().endswith("}\n")
        recovered.charge("adult", 0.25, key="fit:j2")
        rebooted = PrivacyAccountant(ledger_path, epsilon_cap=2.0)
        assert rebooted.spent("adult") == pytest.approx(0.75)
        assert len(rebooted.entries("adult")) == 2

    def test_summary_shape(self, ledger_path):
        accountant = PrivacyAccountant(ledger_path, epsilon_cap=3.0)
        accountant.charge("adult", 1.0, label="fit:kendall:j1")
        summary = accountant.summary("adult")
        assert summary["epsilon_cap"] == 3.0
        assert summary["epsilon_spent"] == pytest.approx(1.0)
        assert summary["epsilon_remaining"] == pytest.approx(2.0)
        assert summary["charges"][0]["label"] == "fit:kendall:j1"
        # The summary must be JSON-serializable as-is (it feeds the API).
        json.dumps(summary)


# -- inter-process charging ------------------------------------------------

def _charge_storm(ledger_path, epsilon_cap, worker, attempts, out_queue):
    from repro.dp.budget import BudgetExhaustedError
    from repro.service.accountant import PrivacyAccountant

    accountant = PrivacyAccountant(ledger_path, epsilon_cap=epsilon_cap)
    granted = 0
    for attempt in range(attempts):
        try:
            accountant.charge(
                "ds", 1.0, label=f"w{worker}", key=f"w{worker}-{attempt}"
            )
            granted += 1
        except BudgetExhaustedError:
            pass
    out_queue.put(granted)


class TestInterProcessCharging:
    def test_two_processes_cannot_jointly_overdraw(self, ledger_path):
        """Concurrent chargers in separate processes respect the cap.

        Two processes race 30 unit charges each against a cap of 40:
        the flocked append + catch-up replay must grant *exactly* 40
        across both, never 41 — and the journal a fresh accountant
        replays afterwards must agree entry-for-entry.
        """
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        out_queue = ctx.Queue()
        workers = [
            ctx.Process(
                target=_charge_storm, args=(ledger_path, 40.0, w, 30, out_queue)
            )
            for w in range(2)
        ]
        for process in workers:
            process.start()
        granted = [out_queue.get(timeout=120) for _ in workers]
        for process in workers:
            process.join(timeout=120)
            assert process.exitcode == 0

        assert sum(granted) == 40
        # Both processes got work in: neither starved behind the lock.
        assert all(count > 0 for count in granted)

        replayed = PrivacyAccountant(ledger_path, epsilon_cap=40.0)
        assert replayed.spent("ds") == pytest.approx(40.0)
        assert len(replayed.entries("ds")) == 40
        assert replayed.remaining("ds") == pytest.approx(0.0)
        # Every journaled line parses cleanly: no torn interleaved writes.
        lines = ledger_path.read_text().splitlines()
        assert len(lines) == 40
        for line in lines:
            json.loads(line)
