"""Tests for the service's /metrics, /healthz and failure observability."""

import json
import logging

import pytest

from repro.telemetry.metrics import REGISTRY


@pytest.fixture
def propagating_logs(monkeypatch):
    """Let dpcopula records reach caplog even when a handler is configured.

    A configured JSON handler (e.g. a DPCOPULA_LOG=debug CI run) sets
    propagate=False on the namespace; caplog listens on the root logger.
    """
    monkeypatch.setattr(logging.getLogger("dpcopula"), "propagate", True)


def upload_and_fit(service, csv_text, dataset_id="obs", epsilon=1.0):
    service.upload_dataset(dataset_id, csv_text)
    job = service.submit_fit(
        {"dataset_id": dataset_id, "epsilon": epsilon, "seed": 11}
    )
    return service.worker.wait(job["job_id"])


class TestHealthz:
    def test_healthy_service_reports_200(self, http_service):
        _, client = http_service
        status, body = client.get("/healthz")
        assert status == 200
        assert body["healthy"] is True
        assert body["checks"] == {
            "fit_worker_alive": True,
            "ledger_writable": True,
            "models_dir_writable": True,
            "jobs_dir_writable": True,
        }
        assert body["queue_depth"] == 0

    def test_dead_worker_reports_503(self, http_service):
        service, client = http_service
        service.worker.close()
        status, body = client.get("/healthz")
        assert status == 503
        assert body["healthy"] is False
        assert body["checks"]["fit_worker_alive"] is False

    def test_unwritable_storage_reports_503(self, http_service, monkeypatch):
        # chmod tricks don't work when the suite runs as root, so stub
        # the writability probe itself.
        service, client = http_service
        monkeypatch.setattr(
            "repro.service.app.os.access", lambda path, mode: False
        )
        status, body = client.get("/healthz")
        assert status == 503
        assert body["checks"]["ledger_writable"] is False
        assert body["checks"]["models_dir_writable"] is False


class TestMetricsEndpoint:
    def test_prometheus_text_is_the_default(self, http_service):
        _, client = http_service
        status, text, content_type = client.get_raw("/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "# TYPE dpcopula_fit_seconds histogram" in text
        assert "# TYPE dpcopula_sample_seconds histogram" in text
        assert "dpcopula_fit_queue_depth 0" in text

    def test_json_via_accept_header(self, http_service):
        _, client = http_service
        status, body = client.get(
            "/metrics", headers={"Accept": "application/json"}
        )
        assert status == 200
        assert body["dpcopula_fit_seconds"]["type"] == "histogram"
        assert body["dpcopula_fit_queue_depth"]["type"] == "gauge"

    def test_fit_and_sample_populate_the_metrics(self, http_service, csv_text):
        service, client = http_service
        fit_before = REGISTRY.get("dpcopula_fit_seconds").count(method="kendall")
        records_before = REGISTRY.get("dpcopula_sample_records_total").value()

        job = upload_and_fit(service, csv_text)
        assert job.status == "done"
        service.sample(job.model_id, n=40, seed=3)

        status, text, _ = client.get_raw("/metrics")
        assert status == 200
        assert (
            REGISTRY.get("dpcopula_fit_seconds").count(method="kendall")
            == fit_before + 1
        )
        assert (
            REGISTRY.get("dpcopula_sample_records_total").value()
            == records_before + 40
        )
        # The traced service fit feeds the per-stage histograms.
        assert 'dpcopula_stage_seconds_count{stage="margins"}' in text
        assert 'dpcopula_stage_seconds_count{stage="correlation"}' in text

    def test_epsilon_gauges_track_the_accountant(self, http_service, csv_text):
        service, client = http_service
        upload_and_fit(service, csv_text, dataset_id="gauges", epsilon=1.25)
        status, text, _ = client.get_raw("/metrics")
        assert status == 200
        assert 'dpcopula_epsilon_spent{dataset="gauges"} 1.25' in text
        assert 'dpcopula_epsilon_remaining{dataset="gauges"} 1.75' in text

        status, body = client.get(
            "/metrics", headers={"Accept": "application/json"}
        )
        spent = {
            s["labels"]["dataset"]: s["value"]
            for s in body["dpcopula_epsilon_spent"]["series"]
        }
        assert spent["gauges"] == 1.25

    def test_http_requests_are_counted(self, http_service):
        _, client = http_service
        counter = REGISTRY.get("dpcopula_http_requests_total")
        before = counter.value(method="GET", route="health", status="200")
        client.get("/health")
        assert (
            counter.value(method="GET", route="health", status="200")
            == before + 1
        )
        unrouted_before = counter.value(
            method="GET", route="<unrouted>", status="404"
        )
        client.get("/nonsense")
        assert (
            counter.value(method="GET", route="<unrouted>", status="404")
            == unrouted_before + 1
        )


class TestFailureObservability:
    def test_failed_fit_logs_traceback_and_counts(
        self, service, csv_text, caplog, monkeypatch, propagating_logs
    ):
        service.upload_dataset("failing", csv_text)
        errors = REGISTRY.get("dpcopula_fit_errors_total")
        jobs = REGISTRY.get("dpcopula_fit_jobs_total")
        errors_before = errors.value(stage="fit_job")
        failed_before = jobs.value(status="failed")

        def explode(job):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(service.worker, "_runner", explode)
        with caplog.at_level("ERROR", logger="dpcopula"):
            job = service.submit_fit({"dataset_id": "failing", "epsilon": 0.5})
            finished = service.worker.wait(job["job_id"])

        assert finished.status == "failed"
        assert finished.error == "RuntimeError: synthetic failure"
        assert errors.value(stage="fit_job") == errors_before + 1
        assert jobs.value(status="failed") == failed_before + 1
        failure_records = [
            r for r in caplog.records if r.message == "fit job failed"
        ]
        assert failure_records, "fit failure was not logged"
        assert "synthetic failure" in str(failure_records[0].exc_info[1])

    def test_registry_sidecar_records_fit_provenance(self, service, csv_text):
        job = upload_and_fit(service, csv_text, dataset_id="prov")
        assert job.status == "done"
        record = service.registry.record(job.model_id)
        extra = record.extra
        assert extra["job_id"] == job.job_id
        assert extra["fit_seconds"] > 0
        assert extra["parallel_backend"] == "serial"
        assert extra["fit_workers"] == 1
        # The sidecar on disk carries the same provenance.
        sidecar = json.loads(
            (service.config.models_dir / f"{job.model_id}.json").read_text()
        )
        assert sidecar["extra"]["fit_seconds"] == extra["fit_seconds"]
        assert sidecar["extra"]["parallel_backend"] == "serial"

    def test_hybrid_cell_failure_is_counted_and_logged(
        self, small_dataset, caplog, monkeypatch, propagating_logs
    ):
        import repro.core.hybrid as hybrid_module
        from repro.core.hybrid import DPCopulaHybrid
        from repro.data.dataset import Attribute, Dataset, Schema
        import numpy as np

        # Build a dataset with one small-domain attribute so the hybrid
        # actually partitions, then make every per-cell fit explode.
        rng = np.random.default_rng(0)
        values = np.column_stack(
            [
                rng.integers(0, 2, size=120),
                small_dataset.values[:120, 0],
                small_dataset.values[:120, 1],
            ]
        )
        schema = Schema(
            [Attribute("flag", 2), Attribute("x", 50), Attribute("y", 40)]
        )
        dataset = Dataset(values, schema)

        def explode(task, shared):
            raise ValueError("cell blew up")

        monkeypatch.setattr(hybrid_module, "_fit_cell_task", explode)
        errors = REGISTRY.get("dpcopula_fit_errors_total")
        before = errors.value(stage="hybrid_cell_fit")

        synthesizer = DPCopulaHybrid(epsilon=2.0, rng=5)
        with caplog.at_level("ERROR", logger="dpcopula"):
            with pytest.raises(ValueError, match="cell blew up"):
                synthesizer.fit_sample(dataset)

        assert errors.value(stage="hybrid_cell_fit") == before + 1
        failure_records = [
            r for r in caplog.records if r.message == "hybrid per-cell fit failed"
        ]
        assert failure_records, "hybrid failure was not logged"
        assert "cell blew up" in str(failure_records[0].exc_info[1])
