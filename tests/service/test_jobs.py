"""Tests for the background fit worker and the service core."""

import threading

import numpy as np
import pytest

from repro.resilience.journal import JobJournal, JobRecord
from repro.service import SynthesisService, ServiceConfig
from repro.service.errors import BudgetRefusedError, NotFoundError, ValidationError
from repro.service.jobs import FitCheckpoint, FitJob, FitWorker, JobStatus


class TestFitWorker:
    def test_runs_jobs_in_order(self):
        finished = []
        worker = FitWorker(lambda job: finished.append(job.job_id) or job.job_id)
        for i in range(3):
            worker.submit(FitJob(job_id=f"j{i}", dataset_id="d", method="kendall",
                                 epsilon=1.0, k=8.0))
        last = worker.wait("j2", timeout=5.0)
        assert last.status == JobStatus.DONE
        assert finished == ["j0", "j1", "j2"]
        worker.close()

    def test_failure_recorded_and_worker_survives(self):
        def runner(job):
            if job.job_id == "bad":
                raise RuntimeError("boom")
            return "model-ok"

        worker = FitWorker(runner)
        worker.submit(FitJob(job_id="bad", dataset_id="d", method="kendall",
                             epsilon=1.0, k=8.0))
        worker.submit(FitJob(job_id="good", dataset_id="d", method="kendall",
                             epsilon=1.0, k=8.0))
        bad = worker.wait("bad", timeout=5.0)
        good = worker.wait("good", timeout=5.0)
        assert bad.status == JobStatus.FAILED
        assert "boom" in bad.error
        assert good.status == JobStatus.DONE
        assert good.model_id == "model-ok"
        worker.close()

    def test_unknown_job_raises(self):
        worker = FitWorker(lambda job: "m")
        with pytest.raises(KeyError):
            worker.get("missing")
        worker.close()

    def test_duplicate_id_rejected(self):
        block = threading.Event()
        worker = FitWorker(lambda job: block.wait(5) or "m")
        job = FitJob(job_id="j", dataset_id="d", method="kendall", epsilon=1.0, k=8.0)
        worker.submit(job)
        with pytest.raises(ValueError, match="already submitted"):
            worker.submit(job)
        block.set()
        worker.close()

    def test_rejects_bad_pool_size(self):
        with pytest.raises(ValueError, match="max_workers"):
            FitWorker(lambda job: "m", max_workers=0)

    def test_pool_overlaps_jobs(self):
        """With two workers, two blocking jobs run concurrently."""
        rendezvous = threading.Barrier(2, timeout=5.0)

        def runner(job):
            rendezvous.wait()  # deadlocks unless both jobs run at once
            return job.job_id

        worker = FitWorker(runner, max_workers=2)
        for i in range(2):
            worker.submit(FitJob(job_id=f"p{i}", dataset_id="d",
                                 method="kendall", epsilon=1.0, k=8.0))
        assert worker.wait("p0", timeout=5.0).status == JobStatus.DONE
        assert worker.wait("p1", timeout=5.0).status == JobStatus.DONE
        worker.close()

    def test_pool_drains_more_jobs_than_workers(self):
        done = []
        worker = FitWorker(lambda job: done.append(job.job_id) or job.job_id,
                           max_workers=3)
        for i in range(10):
            worker.submit(FitJob(job_id=f"q{i}", dataset_id="d",
                                 method="kendall", epsilon=1.0, k=8.0))
        for i in range(10):
            assert worker.wait(f"q{i}", timeout=5.0).status == JobStatus.DONE
        assert sorted(done) == sorted(f"q{i}" for i in range(10))
        worker.close()


class TestFitCheckpoint:
    def test_save_journals_the_stage_before_persisting_noise(
        self, tmp_path, monkeypatch
    ):
        """A crash inside save() must never leave a noise-bearing
        checkpoint that the journal knows nothing about — that is the
        window where a later pre-noise failure would refund ε for noise
        that durably exists.  The safe order is journal first: a crash
        then leaves an over-claiming journal (refund blocked, stage
        recomputed bitwise from its seed), never an unclaimed release.
        """
        journal = JobJournal(tmp_path / "jobs")
        journal.create(
            JobRecord(
                job_id="j1",
                dataset_id="ds",
                method="kendall",
                epsilon=1.0,
                k=8.0,
                seed=42,
            )
        )
        monkeypatch.setattr(
            journal,
            "save_stage",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk died")),
        )
        checkpoint = FitCheckpoint(journal, "j1")
        with pytest.raises(OSError):
            checkpoint.save("margins", {"m": np.arange(3.0)})
        record = journal.load("j1")
        assert record.stage_computed.get("margins") == 1
        assert not journal.has_stage_checkpoints("j1")


class TestPooledService:
    """The service wired with a fit pool and a parallel context."""

    def test_concurrent_fits_register_models(self, tmp_path, csv_text):
        config = ServiceConfig(
            data_dir=tmp_path / "pooled",
            epsilon_cap=10.0,
            fit_workers=2,
            parallel_backend="thread",
            parallel_workers=2,
        )
        service = SynthesisService(config)
        try:
            service.upload_dataset("d1", csv_text)
            jobs = [
                service.submit_fit(
                    {"dataset_id": "d1", "epsilon": 0.5, "seed": i}
                )
                for i in range(3)
            ]
            for job in jobs:
                finished = service.worker.wait(job["job_id"], timeout=60.0)
                assert finished.status == JobStatus.DONE, finished.error
            assert len(service.list_models()) == 3
            assert service.budget_summary("d1")["epsilon_spent"] == pytest.approx(1.5)
        finally:
            service.close()


class TestServiceCore:
    """Service-level validation without going through HTTP."""

    def test_upload_and_inspect(self, service, csv_text):
        summary = service.upload_dataset("demo", csv_text)
        assert summary["dataset_id"] == "demo"
        assert summary["n_records"] == 300
        inspected = service.inspect_dataset("demo")
        assert inspected["attributes"][0]["name"] == "a"
        assert inspected["budget"]["epsilon_spent"] == 0.0

    def test_upload_rejects_bad_csv(self, service):
        with pytest.raises(ValidationError):
            service.upload_dataset("bad", "x,y\n1,2\n")
        with pytest.raises(ValidationError):
            service.upload_dataset("empty", "   ")

    def test_upload_rejects_duplicate_id(self, service, csv_text):
        service.upload_dataset("demo", csv_text)
        with pytest.raises(ValidationError, match="already exists"):
            service.upload_dataset("demo", csv_text)

    def test_fit_unknown_dataset(self, service):
        with pytest.raises(NotFoundError):
            service.submit_fit({"dataset_id": "missing", "epsilon": 1.0})

    def test_fit_rejects_hybrid(self, service, csv_text):
        service.upload_dataset("demo", csv_text)
        with pytest.raises(ValidationError, match="hybrid"):
            service.submit_fit({"dataset_id": "demo", "method": "hybrid"})

    def test_fit_rejects_bad_epsilon(self, service, csv_text):
        service.upload_dataset("demo", csv_text)
        with pytest.raises(ValidationError):
            service.submit_fit({"dataset_id": "demo", "epsilon": -1.0})

    def test_fit_over_cap_fast_fails(self, service, csv_text):
        service.upload_dataset("demo", csv_text)
        with pytest.raises(BudgetRefusedError):
            service.submit_fit({"dataset_id": "demo", "epsilon": 99.0})

    def test_fit_to_sample_pipeline(self, service, csv_text):
        service.upload_dataset("demo", csv_text)
        job = service.submit_fit(
            {"dataset_id": "demo", "method": "kendall", "epsilon": 1.0, "seed": 0}
        )
        done = service.worker.wait(job["job_id"], timeout=60.0)
        assert done.status == JobStatus.DONE
        result = service.sample(done.model_id, n=25, seed=1)
        assert result["n_records"] == 25
        assert result["privacy_cost"] == 0.0
        assert service.accountant.spent("demo") == pytest.approx(1.0)

    def test_sample_validation(self, service, released_model):
        record = service.registry.put(released_model, dataset_id="d", method="kendall")
        with pytest.raises(NotFoundError):
            service.sample("missing", n=10)
        with pytest.raises(ValidationError):
            service.sample(record.model_id, n=0)
        with pytest.raises(ValidationError):
            service.sample(record.model_id, n=10, seed="not-an-int")
