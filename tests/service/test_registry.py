"""Tests for the persistent model registry."""

import json

import numpy as np
import pytest

from repro.io import MODEL_FORMAT_VERSION
from repro.service.registry import ModelRecord, ModelRegistry


@pytest.fixture
def registry(tmp_path) -> ModelRegistry:
    return ModelRegistry(tmp_path / "models")


class TestPutGet:
    def test_roundtrip(self, registry, released_model):
        record = registry.put(released_model, dataset_id="d1", method="kendall")
        loaded = registry.get(record.model_id)
        assert loaded.schema == released_model.schema
        assert loaded.n_records == released_model.n_records
        np.testing.assert_allclose(loaded.correlation, released_model.correlation)

    def test_record_metadata(self, registry, released_model):
        record = registry.put(
            released_model, dataset_id="d1", method="kendall", extra={"k": 8.0}
        )
        fetched = registry.record(record.model_id)
        assert fetched.dataset_id == "d1"
        assert fetched.method == "kendall"
        assert fetched.epsilon == released_model.epsilon
        assert fetched.format_version == MODEL_FORMAT_VERSION
        assert fetched.extra["k"] == 8.0

    def test_sidecar_and_npz_on_disk(self, registry, released_model, tmp_path):
        record = registry.put(released_model, dataset_id="d1", method="kendall")
        assert (tmp_path / "models" / f"{record.model_id}.npz").exists()
        sidecar = tmp_path / "models" / f"{record.model_id}.json"
        assert json.loads(sidecar.read_text())["model_id"] == record.model_id

    def test_duplicate_id_rejected(self, registry, released_model):
        registry.put(released_model, dataset_id="d", method="kendall", model_id="m1")
        with pytest.raises(ValueError, match="already registered"):
            registry.put(
                released_model, dataset_id="d", method="kendall", model_id="m1"
            )

    def test_invalid_id_rejected(self, registry, released_model):
        with pytest.raises(ValueError, match="invalid"):
            registry.put(
                released_model, dataset_id="d", method="kendall", model_id="../evil"
            )

    def test_unknown_id_raises_keyerror(self, registry):
        with pytest.raises(KeyError):
            registry.get("nope")
        with pytest.raises(KeyError):
            registry.record("nope")


class TestPersistence:
    def test_survives_restart_without_refit(self, tmp_path, released_model):
        first = ModelRegistry(tmp_path / "models")
        record = first.put(released_model, dataset_id="d1", method="kendall")

        rebooted = ModelRegistry(tmp_path / "models")
        assert record.model_id in rebooted
        loaded = rebooted.get(record.model_id)
        np.testing.assert_allclose(loaded.correlation, released_model.correlation)
        sampled = loaded.sample(50, rng=3)
        assert sampled.n_records == 50

    def test_list_reads_sidecars_only(self, tmp_path, released_model):
        registry = ModelRegistry(tmp_path / "models")
        registry.put(released_model, dataset_id="d1", method="kendall", model_id="m1")
        registry.put(released_model, dataset_id="d2", method="mle", model_id="m2")
        # Corrupt the NPZ payloads: listing must still work (lazy load).
        for npz in (tmp_path / "models").glob("*.npz"):
            npz.write_bytes(b"not an npz")
        fresh = ModelRegistry(tmp_path / "models")
        listed = fresh.list()
        assert {r.model_id for r in listed} == {"m1", "m2"}
        assert all(isinstance(r, ModelRecord) for r in listed)

    def test_orphaned_npz_invisible(self, tmp_path, released_model):
        registry = ModelRegistry(tmp_path / "models")
        # Simulate a crash between the NPZ write and the sidecar write.
        (tmp_path / "models" / "orphan.npz").write_bytes(b"partial")
        assert "orphan" not in registry
        assert len(registry) == 0
        assert registry.list() == []
