"""Tests for the persistent model registry."""

import json

import numpy as np
import pytest

from repro.io import MODEL_FORMAT_VERSION
from repro.service.registry import ModelRecord, ModelRegistry


@pytest.fixture
def registry(tmp_path) -> ModelRegistry:
    return ModelRegistry(tmp_path / "models")


class TestPutGet:
    def test_roundtrip(self, registry, released_model):
        record = registry.put(released_model, dataset_id="d1", method="kendall")
        loaded = registry.get(record.model_id)
        assert loaded.schema == released_model.schema
        assert loaded.n_records == released_model.n_records
        np.testing.assert_allclose(loaded.correlation, released_model.correlation)

    def test_record_metadata(self, registry, released_model):
        record = registry.put(
            released_model, dataset_id="d1", method="kendall", extra={"k": 8.0}
        )
        fetched = registry.record(record.model_id)
        assert fetched.dataset_id == "d1"
        assert fetched.method == "kendall"
        assert fetched.epsilon == released_model.epsilon
        assert fetched.format_version == MODEL_FORMAT_VERSION
        assert fetched.extra["k"] == 8.0

    def test_sidecar_and_npz_on_disk(self, registry, released_model, tmp_path):
        record = registry.put(released_model, dataset_id="d1", method="kendall")
        assert (tmp_path / "models" / f"{record.model_id}.npz").exists()
        sidecar = tmp_path / "models" / f"{record.model_id}.json"
        assert json.loads(sidecar.read_text())["model_id"] == record.model_id

    def test_duplicate_id_rejected(self, registry, released_model):
        registry.put(released_model, dataset_id="d", method="kendall", model_id="m1")
        with pytest.raises(ValueError, match="already registered"):
            registry.put(
                released_model, dataset_id="d", method="kendall", model_id="m1"
            )

    def test_invalid_id_rejected(self, registry, released_model):
        with pytest.raises(ValueError, match="invalid"):
            registry.put(
                released_model, dataset_id="d", method="kendall", model_id="../evil"
            )

    def test_unknown_id_raises_keyerror(self, registry):
        with pytest.raises(KeyError):
            registry.get("nope")
        with pytest.raises(KeyError):
            registry.record("nope")


class TestPersistence:
    def test_survives_restart_without_refit(self, tmp_path, released_model):
        first = ModelRegistry(tmp_path / "models")
        record = first.put(released_model, dataset_id="d1", method="kendall")

        rebooted = ModelRegistry(tmp_path / "models")
        assert record.model_id in rebooted
        loaded = rebooted.get(record.model_id)
        np.testing.assert_allclose(loaded.correlation, released_model.correlation)
        sampled = loaded.sample(50, rng=3)
        assert sampled.n_records == 50

    def test_list_reads_sidecars_only(self, tmp_path, released_model):
        registry = ModelRegistry(tmp_path / "models")
        registry.put(released_model, dataset_id="d1", method="kendall", model_id="m1")
        registry.put(released_model, dataset_id="d2", method="mle", model_id="m2")
        # Corrupt the NPZ payloads: listing must still work (lazy load).
        for npz in (tmp_path / "models").glob("*.npz"):
            npz.write_bytes(b"not an npz")
        fresh = ModelRegistry(tmp_path / "models")
        listed = fresh.list()
        assert {r.model_id for r in listed} == {"m1", "m2"}
        assert all(isinstance(r, ModelRecord) for r in listed)

    def test_orphaned_npz_invisible(self, tmp_path, released_model):
        registry = ModelRegistry(tmp_path / "models")
        # Simulate a crash between the NPZ write and the sidecar write.
        (tmp_path / "models" / "orphan.npz").write_bytes(b"partial")
        assert "orphan" not in registry
        assert len(registry) == 0
        assert registry.list() == []


class TestLRUCache:
    def test_eviction_respects_bound(self, tmp_path, released_model):
        from repro.telemetry import metrics

        evictions = metrics.REGISTRY.counter("dpcopula_registry_evictions_total")
        before = evictions.value()
        registry = ModelRegistry(tmp_path / "models", max_cached_models=2)
        for model_id in ("m1", "m2", "m3"):
            registry.put(
                released_model, dataset_id="d", method="kendall", model_id=model_id
            )
        assert registry.cached_models() == 2
        assert evictions.value() == before + 1

    def test_evicted_model_reloads_from_disk(self, tmp_path, released_model):
        registry = ModelRegistry(tmp_path / "models", max_cached_models=1)
        registry.put(released_model, dataset_id="d", method="kendall", model_id="m1")
        registry.put(released_model, dataset_id="d", method="kendall", model_id="m2")
        # m1 was evicted; a get must transparently reload it.
        loaded = registry.get("m1")
        np.testing.assert_allclose(loaded.correlation, released_model.correlation)
        assert registry.cached_models() == 1

    def test_lru_order_touched_by_get(self, tmp_path, released_model):
        registry = ModelRegistry(tmp_path / "models", max_cached_models=2)
        registry.put(released_model, dataset_id="d", method="kendall", model_id="m1")
        registry.put(released_model, dataset_id="d", method="kendall", model_id="m2")
        registry.get("m1")  # m1 becomes most-recent; m2 is now the LRU
        registry.put(released_model, dataset_id="d", method="kendall", model_id="m3")
        registry.get("m1")  # still cached: no disk load needed
        assert registry.cached_models() == 2

    def test_unbounded_cache(self, tmp_path, released_model):
        registry = ModelRegistry(tmp_path / "models", max_cached_models=None)
        for i in range(5):
            registry.put(
                released_model, dataset_id="d", method="kendall", model_id=f"m{i}"
            )
        assert registry.cached_models() == 5

    def test_invalid_bound_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_cached_models"):
            ModelRegistry(tmp_path / "models", max_cached_models=0)


class TestPlansAndHotSwap:
    def test_get_plan_compiled_once_and_cached(self, tmp_path, released_model):
        registry = ModelRegistry(tmp_path / "models")
        registry.put(released_model, dataset_id="d", method="kendall", model_id="m1")
        first = registry.get_plan("m1")
        assert first is registry.get_plan("m1")
        assert first.model_id == "m1"
        assert first.generation == registry.generation("m1") == 1

    def test_plan_samples_bitwise_like_model(self, tmp_path, released_model):
        registry = ModelRegistry(tmp_path / "models")
        registry.put(released_model, dataset_id="d", method="kendall", model_id="m1")
        plan = registry.get_plan("m1")
        np.testing.assert_array_equal(
            plan.sample(100, np.random.default_rng(3)).values,
            released_model.sample(100, rng=np.random.default_rng(3)).values,
        )

    def test_replace_bumps_generation_and_plan(
        self, tmp_path, released_model, small_dataset
    ):
        from repro.core.dpcopula import DPCopulaKendall
        from repro.io import ReleasedModel

        registry = ModelRegistry(tmp_path / "models")
        registry.put(released_model, dataset_id="d", method="kendall", model_id="m1")
        stale = registry.get_plan("m1")

        swapped = ReleasedModel.from_synthesizer(
            DPCopulaKendall(epsilon=2.0, rng=9).fit(small_dataset)
        )
        record = registry.replace("m1", swapped)
        assert record.epsilon == swapped.epsilon
        assert registry.generation("m1") == 2

        fresh = registry.get_plan("m1")
        assert fresh is not stale
        assert fresh.generation == 2
        np.testing.assert_array_equal(
            fresh.sample(50, np.random.default_rng(1)).values,
            swapped.sample(50, rng=np.random.default_rng(1)).values,
        )
        # The durable payload was swapped too: a fresh process sees it.
        rebooted = ModelRegistry(tmp_path / "models")
        np.testing.assert_allclose(
            rebooted.get("m1").correlation, swapped.correlation
        )

    def test_replace_unknown_id(self, tmp_path, released_model):
        registry = ModelRegistry(tmp_path / "models")
        with pytest.raises(KeyError):
            registry.replace("nope", released_model)

    def test_generation_survives_eviction(self, tmp_path, released_model):
        """Eviction must not reset generations (stale-plan invalidation)."""
        registry = ModelRegistry(tmp_path / "models", max_cached_models=1)
        registry.put(released_model, dataset_id="d", method="kendall", model_id="m1")
        registry.replace("m1", released_model)
        assert registry.generation("m1") == 2
        registry.put(released_model, dataset_id="d", method="kendall", model_id="m2")
        assert registry.cached_models() == 1  # m1 evicted
        assert registry.get_plan("m1").generation == 2


# -- cross-process generation watching ------------------------------------

def _replace_in_child(models_dir, model_id):
    from repro.service.registry import ModelRegistry

    registry = ModelRegistry(models_dir)
    registry.replace(model_id, registry.get(model_id))


class TestCrossProcessGenerations:
    def test_sibling_replace_is_seen_through_sidecar_fingerprint(
        self, tmp_path, released_model
    ):
        """A replace() in another process invalidates this one's cache.

        The parent warms its in-memory cache and compiled plan first, so
        only the sidecar fingerprint watch can reveal the swap — there
        is no shared memory between the two registries.
        """
        import multiprocessing

        models_dir = tmp_path / "models"
        registry = ModelRegistry(models_dir)
        registry.put(
            released_model, dataset_id="d", method="kendall", model_id="m1"
        )
        assert registry.get_plan("m1").generation == 1  # warm the cache

        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_replace_in_child, args=(models_dir, "m1"))
        child.start()
        child.join(timeout=60)
        assert child.exitcode == 0

        assert registry.generation("m1") == 2
        assert registry.record("m1").generation == 2
        assert registry.get_plan("m1").generation == 2
        # A third process (fresh registry) agrees on the durable state.
        assert ModelRegistry(models_dir).generation("m1") == 2
