"""Tests for the fleet observatory: budget timelines, utility probes,
drift detection and the /budget + /debug/observatory endpoints."""

import json
import urllib.request

import pytest

from repro.core.dpcopula import DPCopulaKendall
from repro.io import ReleasedModel
from repro.service import ServiceConfig, SynthesisService, build_server
from repro.service.registry import ModelRegistry
from repro.telemetry.metrics import REGISTRY
from repro.telemetry.observatory import (
    UtilityProbe,
    budget_timelines,
    load_probe_document,
    probe_seed,
    read_drift_events,
)

from tests.service.test_observability import upload_and_fit


class TestBudgetTimelines:
    def test_charges_accumulate_into_burn_down(self):
        entries = [
            {"dataset": "adult", "epsilon": 1.0, "label": "fit:a", "timestamp": 10.0},
            {"dataset": "adult", "epsilon": 0.5, "label": "fit:b", "timestamp": 20.0},
            {"dataset": "census", "epsilon": 2.0, "label": "fit:c", "timestamp": 15.0},
        ]
        doc = budget_timelines(entries, epsilon_cap=4.0)
        assert doc["epsilon_cap"] == 4.0
        by_id = {d["dataset_id"]: d for d in doc["datasets"]}
        adult = by_id["adult"]
        assert adult["epsilon_spent"] == 1.5
        assert adult["epsilon_remaining"] == 2.5
        assert adult["utilization"] == pytest.approx(1.5 / 4.0)
        assert [e["spent_after"] for e in adult["events"]] == [1.0, 1.5]
        assert [e["remaining_after"] for e in adult["events"]] == [3.0, 2.5]
        assert adult["events"][0]["label"] == "fit:a"
        assert by_id["census"]["epsilon_spent"] == 2.0

    def test_refunds_are_clipped_at_zero(self):
        entries = [
            {"dataset": "d", "epsilon": 1.0, "kind": "charge"},
            {"dataset": "d", "epsilon": 5.0, "kind": "refund"},
            {"dataset": "d", "epsilon": 0.5, "kind": "charge"},
        ]
        (timeline,) = budget_timelines(entries, epsilon_cap=2.0)["datasets"]
        assert [e["spent_after"] for e in timeline["events"]] == [1.0, 0.0, 0.5]
        assert timeline["epsilon_spent"] == 0.5

    def test_known_datasets_appear_with_full_headroom(self):
        doc = budget_timelines([], epsilon_cap=3.0, datasets=["quiet"])
        (timeline,) = doc["datasets"]
        assert timeline["dataset_id"] == "quiet"
        assert timeline["epsilon_spent"] == 0.0
        assert timeline["epsilon_remaining"] == 3.0
        assert timeline["events"] == []

    def test_overspent_dataset_clamps_remaining(self):
        entries = [{"dataset": "d", "epsilon": 9.0}]
        (timeline,) = budget_timelines(entries, epsilon_cap=4.0)["datasets"]
        assert timeline["epsilon_remaining"] == 0.0
        assert timeline["utilization"] == pytest.approx(9.0 / 4.0)


class TestProbeSeed:
    def test_deterministic_per_model_and_generation(self):
        assert probe_seed("m1", 1) == probe_seed("m1", 1)
        assert probe_seed("m1", 1) != probe_seed("m1", 2)
        assert probe_seed("m1", 1) != probe_seed("m2", 1)


@pytest.fixture
def registry_with_model(tmp_path, released_model):
    registry = ModelRegistry(tmp_path / "models")
    record = registry.put(released_model, dataset_id="d", method="kendall")
    return registry, record.model_id


class TestUtilityProbe:
    def test_run_once_is_deterministic_per_generation(
        self, tmp_path, registry_with_model
    ):
        registry, model_id = registry_with_model
        probe = UtilityProbe(
            registry, tmp_path / "obs", sample_size=64, interval=0.0
        )
        first = probe.run_once()
        second = probe.run_once()
        assert first["models_probed"] == 1
        (model_a,) = first["models"]
        (model_b,) = second["models"]
        assert model_a["model_id"] == model_id
        assert model_a["generation"] == 1
        assert model_a["sample_size"] == 64
        # Same (model, generation) → same seed → bitwise-identical
        # sample → identical utility numbers.
        assert model_a["margin_tvd"] == model_b["margin_tvd"]
        assert model_a["tau_error"] == model_b["tau_error"]
        assert model_a["copula_misfit"] == model_b["copula_misfit"]
        assert 0.0 <= model_a["margin_tvd_max"] <= 1.0
        # The two-way probe compares the sample's empirical pair tables
        # against the copula-implied distributions; a healthy model on
        # its own sample should sit well inside [0, 1].
        assert model_a["kway_tvd_max"] == model_b["kway_tvd_max"]
        assert 0.0 <= model_a["kway_tvd_max"] <= 1.0

    def test_run_once_publishes_gauges_and_persists(
        self, tmp_path, registry_with_model
    ):
        registry, model_id = registry_with_model
        probe = UtilityProbe(registry, tmp_path / "obs", sample_size=64)
        document = probe.run_once()
        generation = "1"
        assert (
            REGISTRY.get("dpcopula_probe_margin_tvd_max").value(
                model=model_id, generation=generation
            )
            == document["models"][0]["margin_tvd_max"]
        )
        assert (
            REGISTRY.get("dpcopula_probe_kway_tvd_max").value(
                model=model_id, generation=generation
            )
            == document["models"][0]["kway_tvd_max"]
        )
        persisted = load_probe_document(tmp_path / "obs")
        assert persisted == document
        assert persisted["worker"] == "main"

    def test_probe_consumes_zero_epsilon(self, tmp_path, registry_with_model):
        registry, _ = registry_with_model
        ledger = tmp_path / "ledger.jsonl"
        ledger.write_text(
            json.dumps({"dataset": "d", "epsilon": 1.0, "key": "fit:1"}) + "\n"
        )
        before = ledger.read_bytes()
        UtilityProbe(registry, tmp_path / "obs", sample_size=64).run_once()
        # Probing is pure post-processing of the released model: the
        # privacy ledger is byte-identical across a cycle.
        assert ledger.read_bytes() == before

    def test_generation_swap_emits_drift_event(
        self, tmp_path, registry_with_model, small_dataset
    ):
        registry, model_id = registry_with_model
        probe = UtilityProbe(
            registry, tmp_path / "obs", sample_size=64, drift_threshold=1e-9
        )
        probe.run_once()
        assert read_drift_events(tmp_path / "obs") == []

        synthesizer = DPCopulaKendall(epsilon=2.0, rng=1)
        synthesizer.fit(small_dataset)
        registry.replace(model_id, ReleasedModel.from_synthesizer(synthesizer))
        drift_counter = REGISTRY.get("dpcopula_probe_drift_events_total")
        probe.run_once()

        events = read_drift_events(tmp_path / "obs")
        assert events, "generation swap above threshold must emit drift"
        assert {e["model_id"] for e in events} == {model_id}
        assert all(e["from_generation"] == 1 for e in events)
        assert all(e["to_generation"] == 2 for e in events)
        assert {e["metric"] for e in events} <= {
            "margin_shift",
            "dependence_shift",
        }
        assert all(e["value"] > 1e-9 for e in events)
        for event in events:
            assert (
                drift_counter.value(model=model_id, metric=event["metric"]) >= 1
            )

    def test_same_generation_never_drifts(self, tmp_path, registry_with_model):
        registry, _ = registry_with_model
        probe = UtilityProbe(
            registry, tmp_path / "obs", sample_size=64, drift_threshold=0.0
        )
        probe.run_once()
        probe.run_once()
        assert read_drift_events(tmp_path / "obs") == []

    def test_failed_model_is_counted_not_fatal(self, tmp_path, registry_with_model):
        registry, model_id = registry_with_model
        # Corrupt the NPZ: the probe cycle must survive and count it.
        (registry.directory / f"{model_id}.npz").write_bytes(b"not-an-npz")
        registry._cache.clear()
        probe = UtilityProbe(registry, tmp_path / "obs", sample_size=64)
        failures = REGISTRY.get("dpcopula_probe_failures_total")
        before = failures.value(model=model_id)
        document = probe.run_once()
        assert document["models_probed"] == 0
        assert failures.value(model=model_id) == before + 1

    def test_background_loop_respects_interval_zero(
        self, tmp_path, registry_with_model
    ):
        registry, _ = registry_with_model
        probe = UtilityProbe(registry, tmp_path / "obs", interval=0.0)
        probe.start()  # no-op: no thread
        assert probe._thread is None
        probe.stop()


class TestServiceEndpoints:
    def test_budget_endpoint_replays_the_ledger(self, http_service, csv_text):
        service, client = http_service
        job = upload_and_fit(service, csv_text, dataset_id="budgeted")
        assert job.status == "done"
        status, body = client.get("/budget")
        assert status == 200
        assert body["epsilon_cap"] == 3.0
        by_id = {d["dataset_id"]: d for d in body["datasets"]}
        timeline = by_id["budgeted"]
        assert timeline["epsilon_spent"] == pytest.approx(1.0)
        assert timeline["epsilon_remaining"] == pytest.approx(2.0)
        (event,) = timeline["events"]
        assert event["kind"] == "charge"
        assert event["spent_after"] == pytest.approx(1.0)

    def test_budget_lists_quiet_datasets(self, http_service, csv_text):
        service, client = http_service
        service.upload_dataset("quiet", csv_text)
        _, body = client.get("/budget")
        by_id = {d["dataset_id"]: d for d in body["datasets"]}
        assert by_id["quiet"]["epsilon_spent"] == 0.0

    def test_observatory_snapshot_shape(self, http_service, csv_text):
        service, client = http_service
        job = upload_and_fit(service, csv_text)
        assert job.status == "done"
        service.probe.run_once()
        status, body = client.get("/debug/observatory")
        assert status == 200
        assert body["served_by"] == "main"
        assert body["budget"]["epsilon_cap"] == 3.0
        assert body["probes"]["models_probed"] == 1
        assert body["drift_events"] == []
        assert body["traces"]["enabled"] is True
        assert any(
            entry["file"].startswith("trace-")
            for entry in body["traces"]["files"]
        )
        assert body["requests_total"] >= 1
        import os

        assert body["workers"] == [{"worker": "main", "pid": os.getpid()}]

    def test_http_traffic_is_traced_to_the_ring(self, http_service):
        service, client = http_service
        client.get("/healthz")
        ring = service.config.traces_dir / "trace-main.jsonl"
        assert ring.exists()
        records = [
            json.loads(line) for line in ring.read_text().splitlines()
        ]
        assert any(r["root"]["name"] == "http.request" for r in records)


class TestRequestIdHeader:
    def _get(self, client, path, headers=None):
        request = urllib.request.Request(
            client.base + path, headers=headers or {}
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return response, response.read()

    def test_every_response_carries_a_request_id(self, http_service):
        _, client = http_service
        response, _ = self._get(client, "/healthz")
        first = response.headers["X-Request-ID"]
        assert first
        response, _ = self._get(client, "/metrics")
        assert response.headers["X-Request-ID"] != first

    def test_inbound_request_id_is_honored(self, http_service):
        _, client = http_service
        response, _ = self._get(
            client, "/healthz", headers={"X-Request-ID": "caller-abc123"}
        )
        assert response.headers["X-Request-ID"] == "caller-abc123"

    def test_request_id_joins_the_exported_trace(self, http_service):
        service, client = http_service
        self._get(client, "/healthz", headers={"X-Request-ID": "trace-join-1"})
        ring = service.config.traces_dir / "trace-main.jsonl"
        records = [json.loads(line) for line in ring.read_text().splitlines()]
        assert any(r["trace_id"] == "trace-join-1" for r in records)


class TestSlowRequests:
    def test_threshold_zero_flags_everything(self, tmp_path):
        service = SynthesisService(
            ServiceConfig(data_dir=tmp_path / "data", slow_request_seconds=0.0)
        )
        try:
            import threading

            server = build_server(service)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            slow = REGISTRY.get("dpcopula_http_slow_requests_total")
            before = slow.value(route="healthz")
            port = server.server_address[1]
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=30
            ):
                pass
            assert slow.value(route="healthz") == before + 1
            server.shutdown()
            server.server_close()
        finally:
            service.close()


class TestExemplarsInSnapshot:
    def test_request_latency_carries_trace_exemplar(self, http_service):
        _, client = http_service
        status, text, _ = client.get_raw(
            "/metrics", headers={"Accept": "application/json"}
        )
        assert status == 200
        snapshot = json.loads(text)
        series = snapshot["dpcopula_http_request_seconds"]["series"]
        exemplars = {}
        for entry in series:
            exemplars.update(entry.get("exemplars", {}))
        assert exemplars, "request latency buckets must carry exemplars"
        assert all(e["trace_id"] for e in exemplars.values())
        # The 0.0.4 text exposition stays exemplar-free (no trace ids
        # on any sample line; "exemplars" may appear in HELP text).
        _, text, _ = client.get_raw("/metrics")
        for trace_id in {e["trace_id"] for e in exemplars.values()}:
            assert trace_id not in text
