"""Service-level tests for the sampling engine wiring.

The engine internals (plans, coalescer, stores) are unit-tested under
``tests/engine/``; these tests pin the service-facing contract: bitwise
per-request determinism under concurrency, the overload → 429 mapping,
and the shared-store / cache-bound configuration knobs.
"""

import threading

import numpy as np
import pytest

from repro.engine import EngineOverloadedError
from repro.service import ServiceConfig, SynthesisService
from repro.service.errors import QueueFullError


@pytest.fixture
def service_with_model(service, released_model):
    record = service.registry.put(
        released_model, dataset_id="d1", method="kendall", model_id="m1"
    )
    return service, record.model_id, released_model


class TestDeterminism:
    def test_seeded_response_matches_pre_engine_path(self, service_with_model):
        """A seeded request reproduces the pre-engine serve output exactly."""
        service, model_id, released_model = service_with_model
        expected = released_model.sample(120, rng=np.random.default_rng(42))
        response = service.sample(model_id, n=120, seed=42)
        assert response["records"] == expected.values.tolist()

    def test_concurrent_seeded_requests_bitwise_stable(self, service_with_model):
        """Same seed, same records — regardless of coalescing with peers."""
        service, model_id, _ = service_with_model
        seeds = list(range(10))
        expected = {
            seed: service.sample(model_id, n=60, seed=seed)["records"]
            for seed in seeds
        }
        results = {}
        errors = []

        def worker(seed):
            try:
                results[seed] = service.sample(model_id, n=60, seed=seed)["records"]
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in seeds]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert results == expected

    def test_unseeded_requests_differ(self, service_with_model):
        service, model_id, _ = service_with_model
        first = service.sample(model_id, n=50)["records"]
        second = service.sample(model_id, n=50)["records"]
        assert first != second


class TestOverloadMapping:
    def test_engine_overload_maps_to_429(self, service_with_model, monkeypatch):
        service, model_id, _ = service_with_model

        def overloaded(*args, **kwargs):
            raise EngineOverloadedError("sampling engine overloaded", retry_after=2.5)

        monkeypatch.setattr(service.engine, "sample", overloaded)
        with pytest.raises(QueueFullError) as excinfo:
            service.sample(model_id, n=10)
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == 2.5


class TestConfigurationKnobs:
    def test_mmap_store_mode_serves_bitwise(self, tmp_path, released_model):
        service = SynthesisService(
            ServiceConfig(data_dir=tmp_path / "data", shared_store_mode="mmap")
        )
        try:
            service.registry.put(
                released_model, dataset_id="d", method="kendall", model_id="m1"
            )
            expected = released_model.sample(80, rng=np.random.default_rng(7))
            response = service.sample("m1", n=80, seed=7)
            assert response["records"] == expected.values.tolist()
            assert (tmp_path / "data" / "plans" / "m1" / "gen-1").exists()
        finally:
            service.close()

    def test_model_cache_bound_flows_to_registry(self, tmp_path):
        service = SynthesisService(
            ServiceConfig(data_dir=tmp_path / "data", model_cache_size=3)
        )
        try:
            assert service.registry.max_cached_models == 3
        finally:
            service.close()

    def test_engine_gauges_exposed(self, service_with_model):
        service, model_id, _ = service_with_model
        service.sample(model_id, n=10, seed=0)
        snapshot = service.metrics_snapshot()
        assert "dpcopula_engine_pending_requests" in snapshot
        assert "dpcopula_registry_cached_models" in snapshot
        assert "dpcopula_coalesced_batch_size" in snapshot
        assert snapshot["dpcopula_engine_sample_seconds"]["series"][0]["count"] >= 1
