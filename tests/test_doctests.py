"""Execute the doctest examples embedded in docstrings."""

import doctest

import pytest

import repro
import repro.core.streaming
import repro.data.discretize
import repro.dp.budget
import repro.dp.mechanisms
import repro.dp.sensitivity
import repro.experiments.plotting
import repro.queries.evaluation
import repro.utils

MODULES_WITH_DOCTESTS = [
    repro.utils,
    repro.dp.budget,
    repro.dp.mechanisms,
    repro.dp.sensitivity,
    repro.experiments.plotting,
    repro.core.streaming,
    repro.data.discretize,
    repro.queries.evaluation,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"


def test_package_docstring_example():
    """The package-level quickstart in repro/__init__.py must run."""
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
