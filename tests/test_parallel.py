"""Unit tests for the shared parallel-execution layer."""

import numpy as np
import pytest

from repro.parallel import (
    BACKENDS,
    ExecutionContext,
    resolve_context,
    spawn_generators,
    spawn_seed_sequences,
)


def _square(task, shared):
    return task * task


def _offset(task, shared):
    return task + shared["offset"]


class TestExecutionContext:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExecutionContext("gpu")

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="max_workers"):
            ExecutionContext("thread", max_workers=0)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ExecutionContext("thread", chunk_size=0)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_preserves_task_order(self, backend):
        context = ExecutionContext(backend, max_workers=3)
        tasks = list(range(23))
        assert context.map_tasks(_square, tasks) == [t * t for t in tasks]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_shared_payload_broadcast(self, backend):
        context = ExecutionContext(backend, max_workers=2)
        result = context.map_tasks(_offset, [1, 2, 3], shared={"offset": 10})
        assert result == [11, 12, 13]

    def test_empty_task_list(self):
        assert ExecutionContext("process", max_workers=2).map_tasks(_square, []) == []

    @pytest.mark.parametrize("chunk_size", [1, 2, 7, 100])
    def test_chunking_never_changes_results(self, chunk_size):
        context = ExecutionContext("thread", max_workers=4, chunk_size=chunk_size)
        tasks = list(range(17))
        assert context.map_tasks(_square, tasks) == [t * t for t in tasks]

    def test_single_worker_pool_degrades_to_serial(self):
        context = ExecutionContext("process", max_workers=1)
        assert context.is_serial
        assert context.map_tasks(_square, [1, 2]) == [1, 4]


class TestFromSpec:
    def test_plain_backend(self):
        context = ExecutionContext.from_spec("thread")
        assert context.backend == "thread"

    def test_backend_with_workers(self):
        context = ExecutionContext.from_spec("process:4")
        assert context.backend == "process"
        assert context.max_workers == 4

    def test_none_and_empty_default_to_serial(self):
        assert ExecutionContext.from_spec(None).backend == "serial"
        assert ExecutionContext.from_spec("  ").backend == "serial"

    def test_passthrough(self):
        context = ExecutionContext("thread", max_workers=2)
        assert ExecutionContext.from_spec(context) is context

    def test_rejects_garbage_worker_count(self):
        with pytest.raises(ValueError, match="worker count"):
            ExecutionContext.from_spec("thread:lots")


class TestResolveContext:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("DPCOPULA_PARALLEL", raising=False)
        assert resolve_context(None).backend == "serial"

    def test_env_var_override(self, monkeypatch):
        monkeypatch.setenv("DPCOPULA_PARALLEL", "thread:3")
        context = resolve_context(None)
        assert context.backend == "thread"
        assert context.max_workers == 3

    def test_explicit_context_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("DPCOPULA_PARALLEL", "thread:3")
        explicit = ExecutionContext("serial")
        assert resolve_context(explicit) is explicit


class TestSeedSpawning:
    def test_deterministic_for_fixed_seed(self):
        first = spawn_seed_sequences(123, 5)
        second = spawn_seed_sequences(123, 5)
        for a, b in zip(first, second):
            assert np.random.default_rng(a).integers(1 << 30) == (
                np.random.default_rng(b).integers(1 << 30)
            )

    def test_children_are_independent(self):
        gens = spawn_generators(0, 3)
        draws = [g.integers(0, 1 << 62) for g in gens]
        assert len(set(draws)) == 3

    def test_advances_parent_uniformly(self):
        # The parent generator must advance by the same amount no matter
        # how many children are spawned, so downstream draws align.
        a = np.random.default_rng(9)
        b = np.random.default_rng(9)
        spawn_seed_sequences(a, 1)
        spawn_seed_sequences(b, 100)
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_seed_sequences(0, -1)
