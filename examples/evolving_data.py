"""Evolving datasets: refreshing a DP synthetic release as data grows.

Implements the paper's second future-work direction (Section 6): records
arrive in batches, and after each batch the curator publishes a fresh
synthetic dataset over everything seen so far, with the *lifetime*
privacy cost bounded by a declared total ε (budgeted across refreshes).

Run:  python examples/evolving_data.py
"""

import numpy as np

from repro import SyntheticSpec, gaussian_dependence_data
from repro.core.streaming import EvolvingDPCopula
from repro.data.dataset import concatenate
from repro.queries.metrics import margin_tvd, pairwise_tau_error


def make_batch(n: int, seed: int):
    spec = SyntheticSpec(
        n_records=n,
        domain_sizes=(200, 200),
        correlation=np.array([[1.0, 0.65], [0.65, 1.0]]),
    )
    return gaussian_dependence_data(spec, rng=seed)


def main() -> None:
    # Lifetime budget 2.0 spread geometrically over 4 refreshes: later
    # epochs (more data, the "current" release) get bigger slices.
    stream = EvolvingDPCopula(
        epsilon=2.0, max_epochs=4, profile="geometric", ratio=2.0, rng=0
    )
    print(stream.summary())
    print()

    batches = []
    print(f"{'epoch':>5}  {'n so far':>9}  {'eps spent':>9}  "
          f"{'margin TVD':>10}  {'max |dtau|':>10}")
    for t, batch_size in enumerate([2_000, 4_000, 8_000, 16_000]):
        batch = make_batch(batch_size, seed=t + 1)
        batches.append(batch)
        release = stream.observe(batch)
        accumulated = concatenate(batches)
        tvd = max(
            margin_tvd(accumulated, release, j) for j in range(2)
        )
        tau = pairwise_tau_error(accumulated, release, rng=t)
        print(
            f"{t:>5}  {accumulated.n_records:>9}  "
            f"{stream.ledger.spent:>9.3f}  {tvd:>10.4f}  {tau:>10.4f}"
        )

    print()
    print("Growing data compensates the per-epoch budget slices: release")
    print("quality improves even though each refresh costs only its slice,")
    print("and the lifetime guarantee stays at the declared total epsilon.")
    print()
    print(stream.summary())
    try:
        stream.observe(make_batch(100, seed=99))
    except RuntimeError as error:
        print()
        print(f"5th refresh correctly refused: {error}")


if __name__ == "__main__":
    main()
