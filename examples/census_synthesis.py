"""Census synthesis: the hybrid algorithm and the baseline comparison.

Reproduces the Figure-7 scenario on the simulated US census extract:
binary attributes are partitioned on (Algorithm 6), every partition gets
its own DPCopula run, and the resulting synthetic data is compared
against the PSD and Filter Priority baselines on random range-count
queries across a privacy-budget sweep.

Run:  python examples/census_synthesis.py
"""

from repro import DPCopulaHybrid, evaluate_workload, random_workload, us_census
from repro.experiments.runner import make_method
from repro.queries.evaluation import true_answers


def main() -> None:
    original = us_census(n_records=20_000)
    print(f"simulated US census extract: {original}")
    print(f"domain space: {original.schema.domain_space():.3g} cells")
    print()

    workload = random_workload(original.schema, 200, rng=1)
    actual = true_answers(original, workload)
    sanity = max(1.0, 0.0005 * original.n_records)  # the paper's s for US

    print("one DP synthetic release (epsilon = 1.0):")
    hybrid = DPCopulaHybrid(epsilon=1.0, rng=2)
    synthetic = hybrid.fit_sample(original)
    print(f"  synthetic: {synthetic}")
    gender = original.schema.index_of("gender")
    print(
        f"  gender=1 share: original {original.column(gender).mean():.3f} "
        f"vs synthetic {synthetic.column(gender).mean():.3f}"
    )
    print()

    print(f"{'epsilon':>8}  {'dpcopula-hybrid':>16}  {'psd':>8}  {'fp':>8}")
    for epsilon in (0.1, 0.25, 0.5, 1.0):
        row = [f"{epsilon:>8}"]
        for name in ("dpcopula-hybrid", "psd", "fp"):
            method = make_method(name)
            source = method.fit(original, epsilon, rng=3)
            evaluation = evaluate_workload(source, workload, actual, sanity)
            width = 16 if name == "dpcopula-hybrid" else 8
            row.append(f"{evaluation.mean_relative_error:>{width}.3f}")
        print("  ".join(row))
    print()
    print("(mean relative error; lower is better — DPCopula's advantage")
    print(" grows as the budget shrinks, Figure 7 of the paper)")


if __name__ == "__main__":
    main()
