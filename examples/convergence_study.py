"""Convergence of DPCopula (Theorem 4.3), measured empirically.

The paper proves that at fixed ε the DPCopula-Kendall synthetic
distribution converges to the original joint distribution as the
cardinality n grows: the fixed-scale Laplace noise is amortized by
growing counts (margins) and the 4/(n+1) sensitivity vanishes
(coefficients).  This example measures three distances at increasing n:

* sup-distance between original and synthetic marginal CDFs;
* max |Δtau| between the Kendall matrices;
* Monte-Carlo sup-distance between the joint CDFs.

Run:  python examples/convergence_study.py
"""

import numpy as np

from repro import DPCopulaKendall, SyntheticSpec, gaussian_dependence_data
from repro.core.convergence import run_convergence_study


def main() -> None:
    correlation = np.array(
        [[1.0, 0.6, 0.3], [0.6, 1.0, 0.4], [0.3, 0.4, 1.0]]
    )

    def make_dataset(n):
        spec = SyntheticSpec(
            n_records=n, domain_sizes=(100, 100, 100), correlation=correlation
        )
        return gaussian_dependence_data(spec, rng=0)

    cardinalities = [500, 2_000, 8_000, 32_000, 128_000]
    # subsample=None: the sampling optimisation would freeze the tau
    # noise at the n̂ level, hiding exactly the n -> infinity behaviour
    # this study measures.
    results = run_convergence_study(
        cardinalities,
        make_dataset=make_dataset,
        make_synthesizer=lambda: DPCopulaKendall(
            epsilon=1.0, subsample=None, rng=1
        ),
        rng=2,
    )

    print(f"{'n':>8}  {'margin sup-dist':>16}  {'max |dtau|':>11}  {'joint sup-dist':>15}")
    for point in results:
        print(
            f"{point.n_records:>8}  {point.margin_sup_distance:>16.4f}  "
            f"{point.tau_error:>11.4f}  {point.joint_cdf_sup_distance:>15.4f}"
        )
    print()
    print("All three distances shrink as n grows (epsilon fixed at 1.0) —")
    print("the convergence Theorem 4.3 guarantees.")


if __name__ == "__main__":
    main()
