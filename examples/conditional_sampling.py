"""Conditional synthesis and released-model persistence.

Two capabilities the copula representation provides as pure
post-processing of one DP release:

1. persist the fitted model (`ReleasedModel`) and re-sample it later —
   the original data never needs to be touched again;
2. sample *conditionally*: hold some attributes fixed and draw the rest
   from their conditional distribution (DP imputation / scenario
   generation).

Run:  python examples/conditional_sampling.py
"""

import numpy as np

from repro import ReleasedModel, us_census
from repro.core.conditional import ConditionalCopulaSampler
from repro.core.dpcopula import DPCopulaKendall


def main() -> None:
    original = us_census(n_records=20_000)
    # Model the three large-domain attributes (the binary one would go
    # through the hybrid path; see examples/census_synthesis.py).
    large = original.project([0, 1, 2])  # age, income, occupation

    synthesizer = DPCopulaKendall(epsilon=1.0, rng=0).fit(large)
    print("fitted DPCopula on", large)
    print(np.round(synthesizer.correlation_, 3))
    print()

    # --- persistence: one release, unlimited sampling -----------------
    model = ReleasedModel.from_synthesizer(synthesizer)
    model.save("/tmp/us_census_release.npz")
    reloaded = ReleasedModel.load("/tmp/us_census_release.npz")
    print(f"released model persisted and reloaded "
          f"(epsilon={reloaded.epsilon}, n={reloaded.n_records})")
    print()

    # --- conditional synthesis ----------------------------------------
    sampler = ConditionalCopulaSampler.from_synthesizer(synthesizer)
    print(f"{'fixed age':>10}  {'mean income code (synthetic)':>29}")
    for age in (20, 40, 60, 80):
        conditioned = sampler.sample(4000, given={"age": age}, rng=age)
        print(f"{age:>10}  {conditioned.column(1).mean():>29.1f}")
    print()
    print("Income rises with the conditioned age — the DP correlation")
    print("matrix carries the age-income dependence into every")
    print("conditional query, without further privacy cost.")


if __name__ == "__main__":
    main()
