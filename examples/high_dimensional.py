"""High-dimensional, large-domain synthesis — where DPCopula shines.

Eight attributes with 1,000 values each: a domain space of 10^24 cells.
No histogram-grid method can even materialize its input here (the paper
makes the same point); DPCopula needs only the m marginal histograms and
the C(m,2) = 28 pairwise coefficients.

Run:  python examples/high_dimensional.py
"""

import time

import numpy as np

from repro import (
    DPCopulaKendall,
    SyntheticSpec,
    evaluate_workload,
    gaussian_dependence_data,
    random_workload,
)
from repro.data.synthetic import random_correlation_matrix
from repro.stats.kendall import kendall_tau_matrix


def main() -> None:
    m, domain = 8, 1000
    correlation = random_correlation_matrix(m, rng=0, strength=0.6)
    spec = SyntheticSpec(
        n_records=50_000,
        domain_sizes=(domain,) * m,
        margins="gaussian",
        correlation=correlation,
    )
    original = gaussian_dependence_data(spec, rng=1)
    print(f"original: {original}")
    print(f"domain space: {original.schema.domain_space():.3g} cells "
          f"(a dense histogram would need ~{original.schema.domain_space() * 8:.1g} bytes)")
    print()

    start = time.perf_counter()
    synthesizer = DPCopulaKendall(epsilon=1.0, rng=2)
    synthetic = synthesizer.fit_sample(original)
    elapsed = time.perf_counter() - start
    print(f"fit + sample took {elapsed:.1f}s "
          f"(Kendall subsampling keeps the cost flat in n)")
    print()

    # Dependence preservation: compare Kendall matrices on subsamples.
    rng = np.random.default_rng(3)
    original_tau = kendall_tau_matrix(original.sample(3000, rng).values)
    synthetic_tau = kendall_tau_matrix(synthetic.sample(3000, rng).values)
    print("max |tau_original - tau_synthetic| over all 28 pairs: "
          f"{np.abs(original_tau - synthetic_tau).max():.3f}")

    workload = random_workload(original.schema, 200, rng=4)
    evaluation = evaluate_workload(synthetic, workload, original)
    print(f"range-count accuracy: {evaluation}")


if __name__ == "__main__":
    main()
