"""Quickstart: synthesize a differentially private copy of a dataset.

Generates correlated 2-D integer data, fits DPCopula-Kendall under a
total budget of ε = 1.0, samples a synthetic dataset, and compares
range-count answers between the two.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DPCopulaKendall,
    SyntheticSpec,
    evaluate_workload,
    gaussian_dependence_data,
    random_workload,
)


def main() -> None:
    # 1. An "original" dataset: 20,000 records, two attributes with
    #    domains of 500 values each, strongly correlated.
    correlation = np.array([[1.0, 0.7], [0.7, 1.0]])
    spec = SyntheticSpec(
        n_records=20_000,
        domain_sizes=(500, 500),
        margins="gaussian",
        correlation=correlation,
    )
    original = gaussian_dependence_data(spec, rng=0)
    print(f"original:  {original}")

    # 2. Fit the synthesizer and draw a same-size DP synthetic dataset.
    #    epsilon is the total privacy budget; k = ε₁/ε₂ splits it between
    #    margins and the correlation matrix (the paper's default is 8).
    synthesizer = DPCopulaKendall(epsilon=1.0, k=8.0, rng=42)
    synthetic = synthesizer.fit_sample(original)
    print(f"synthetic: {synthetic}")
    print()
    print("How the budget was spent:")
    print(synthesizer.budget_.summary())

    # 3. The DP estimate of the dependence.
    print()
    print("DP correlation matrix estimate:")
    print(np.round(synthesizer.correlation_, 3))

    # 4. Utility: answer 200 random range-count queries on both datasets.
    workload = random_workload(original.schema, 200, rng=7)
    evaluation = evaluate_workload(synthetic, workload, original)
    print()
    print(f"range-count accuracy over {evaluation.n_queries} random queries:")
    print(f"  mean relative error:   {evaluation.mean_relative_error:.4f}")
    print(f"  median relative error: {evaluation.median_relative_error:.4f}")
    print(f"  mean absolute error:   {evaluation.mean_absolute_error:.1f} records")


if __name__ == "__main__":
    main()
