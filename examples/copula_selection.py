"""Copula goodness-of-fit: AIC selection between Gaussian and t copulas.

The paper leaves "employing other copula families and ... how to select
optimal copula functions" as future work (Sections 3.2 and 6); this
example exercises that extension.  Two datasets are generated — one with
Gaussian dependence, one with heavy-tailed t-copula dependence — and the
AIC-based selector picks a family for each.

Run:  python examples/copula_selection.py
"""

import numpy as np
from scipy import stats as sps

from repro import SyntheticSpec, gaussian_dependence_data, select_copula
from repro.core.selection import rank_copulas
from repro.data.dataset import Dataset, Schema


def t_copula_dataset(rho=0.7, df=2.5, n=6000, domain=200, seed=0):
    """Data whose dependence is a t copula: joint extremes co-occur."""
    rng = np.random.default_rng(seed)
    correlation = np.array([[1.0, rho], [rho, 1.0]])
    normals = rng.multivariate_normal([0, 0], correlation, size=n)
    chi2 = rng.chisquare(df, size=n)
    t_samples = normals / np.sqrt(chi2 / df)[:, None]
    uniforms = sps.t.cdf(t_samples, df)
    values = np.clip((uniforms * domain).astype(int), 0, domain - 1)
    return Dataset(values, Schema.from_domain_sizes([domain, domain]))


def main() -> None:
    gaussian_data = gaussian_dependence_data(
        SyntheticSpec(
            n_records=6000,
            domain_sizes=(200, 200),
            correlation=np.array([[1.0, 0.7], [0.7, 1.0]]),
        ),
        rng=1,
    )
    heavy_tail_data = t_copula_dataset(seed=2)

    for label, data in [
        ("gaussian-dependence data", gaussian_data),
        ("t-copula (heavy tail) data", heavy_tail_data),
    ]:
        fit = select_copula(data)
        scores = rank_copulas(data)
        print(f"{label}:")
        for family, aic in sorted(scores.items(), key=lambda kv: kv[1]):
            marker = " <- selected" if family == fit.name else ""
            print(f"  AIC[{family:>8}] = {aic:12.1f}{marker}")
        if fit.name == "t":
            print(f"  fitted degrees of freedom: {fit.model.df_}")
        print()

    # The selected model can synthesize directly (non-private here —
    # wrap in DPCopula for the private pipeline).
    fit = select_copula(heavy_tail_data)
    synthetic = fit.model.sample(2000, rng=3)
    print(f"synthesized {synthetic.n_records} records from the selected "
          f"{fit.name}-copula model: {synthetic}")


if __name__ == "__main__":
    main()
